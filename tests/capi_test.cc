// Tests for the C API (paper footnote 3): lifecycle, dedup semantics
// through the C surface, and error reporting.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "capi/speed_c.h"

namespace {

int counting_reverse(const uint8_t* input, size_t input_len, uint8_t** output,
                     size_t* output_len, void* user_data) {
  int* counter = static_cast<int*>(user_data);
  if (counter != nullptr) ++*counter;
  uint8_t* out = static_cast<uint8_t*>(std::malloc(input_len ? input_len : 1));
  for (size_t i = 0; i < input_len; ++i) out[i] = input[input_len - 1 - i];
  *output = out;
  *output_len = input_len;
  return 0;
}

int failing_compute(const uint8_t*, size_t, uint8_t**, size_t*, void*) {
  return -1;
}

class CapiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dep_ = speed_deployment_create("capi-test-app");
    ASSERT_NE(dep_, nullptr);
    const uint8_t code[] = "library code v1";
    ASSERT_EQ(speed_register_library(dep_, "clib", "1.0", code, sizeof(code)),
              SPEED_OK);
  }

  void TearDown() override { speed_deployment_destroy(dep_); }

  speed_deployment* dep_ = nullptr;
};

TEST_F(CapiTest, DedupRoundTrip) {
  int executions = 0;
  speed_function* f = speed_function_create(
      dep_, "clib", "1.0", "bytes reverse(bytes)", counting_reverse, &executions);
  ASSERT_NE(f, nullptr);

  const uint8_t input[] = {'a', 'b', 'c', 'd'};
  uint8_t* out1 = nullptr;
  size_t len1 = 0;
  ASSERT_EQ(speed_call(f, input, sizeof(input), &out1, &len1), SPEED_OK);
  ASSERT_EQ(len1, sizeof(input));
  EXPECT_EQ(std::memcmp(out1, "dcba", 4), 0);
  EXPECT_EQ(speed_last_was_deduplicated(f), 0);
  ASSERT_EQ(speed_flush(dep_), SPEED_OK);

  uint8_t* out2 = nullptr;
  size_t len2 = 0;
  ASSERT_EQ(speed_call(f, input, sizeof(input), &out2, &len2), SPEED_OK);
  EXPECT_EQ(len2, len1);
  EXPECT_EQ(std::memcmp(out1, out2, len1), 0);
  EXPECT_EQ(speed_last_was_deduplicated(f), 1);
  EXPECT_EQ(executions, 1) << "second call must not re-execute";

  speed_buffer_free(out1);
  speed_buffer_free(out2);
  speed_function_destroy(f);
}

TEST_F(CapiTest, EmptyInputAndOutput) {
  speed_function* f = speed_function_create(dep_, "clib", "1.0", "id",
                                            counting_reverse, nullptr);
  ASSERT_NE(f, nullptr);
  uint8_t* out = nullptr;
  size_t len = 99;
  ASSERT_EQ(speed_call(f, nullptr, 0, &out, &len), SPEED_OK);
  EXPECT_EQ(len, 0u);
  speed_buffer_free(out);
  speed_function_destroy(f);
}

TEST_F(CapiTest, MetaStatsTrackSpilledEntries) {
  int executions = 0;
  speed_function* f = speed_function_create(
      dep_, "clib", "1.0", "bytes reverse(bytes)", counting_reverse,
      &executions);
  ASSERT_NE(f, nullptr);
  const uint8_t input[] = {'m', 'e', 't', 'a'};
  uint8_t* out = nullptr;
  size_t len = 0;
  ASSERT_EQ(speed_call(f, input, sizeof(input), &out, &len), SPEED_OK);
  speed_buffer_free(out);
  ASSERT_EQ(speed_flush(dep_), SPEED_OK);

  // Every stored entry writes a sealed spill record; the resident charge
  // covers the slot index (plus the decoded-record cache).
  speed_meta_stats stats{};
  ASSERT_EQ(speed_meta_stats_read(dep_, &stats), SPEED_OK);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.spills, 1u);
  EXPECT_EQ(stats.pinned_records, 0u);
  EXPECT_GT(stats.index_bytes, 0u);
  EXPECT_GE(stats.resident_bytes, stats.index_bytes);

  EXPECT_EQ(speed_meta_stats_read(nullptr, &stats),
            SPEED_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(speed_meta_stats_read(dep_, nullptr), SPEED_ERR_INVALID_ARGUMENT);
  speed_function_destroy(f);
}

TEST_F(CapiTest, UnknownLibraryFailsCreation) {
  speed_function* f = speed_function_create(dep_, "not-registered", "9.9",
                                            "sig", counting_reverse, nullptr);
  EXPECT_EQ(f, nullptr);
  EXPECT_NE(std::strlen(speed_last_error(dep_)), 0u);
}

TEST_F(CapiTest, ComputeFailurePropagates) {
  speed_function* f = speed_function_create(dep_, "clib", "1.0", "failing",
                                            failing_compute, nullptr);
  ASSERT_NE(f, nullptr);
  uint8_t* out = nullptr;
  size_t len = 0;
  const uint8_t input[] = {1};
  EXPECT_EQ(speed_call(f, input, 1, &out, &len), SPEED_ERR_COMPUTE_FAILED);
  speed_function_destroy(f);
}

TEST_F(CapiTest, NullArgumentHandling) {
  EXPECT_EQ(speed_deployment_create(nullptr), nullptr);
  EXPECT_EQ(speed_register_library(nullptr, "a", "b", nullptr, 0),
            SPEED_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(speed_function_create(dep_, nullptr, "1", "s", counting_reverse,
                                  nullptr),
            nullptr);
  EXPECT_EQ(speed_flush(nullptr), SPEED_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(speed_last_was_deduplicated(nullptr), 0);
  speed_buffer_free(nullptr);  // must be a no-op
}

TEST_F(CapiTest, MetricsSnapshotReflectsCalls) {
  speed_function* f = speed_function_create(dep_, "clib", "1.0", "snap",
                                            counting_reverse, nullptr);
  ASSERT_NE(f, nullptr);
  const uint8_t input[] = {'m'};
  uint8_t* out = nullptr;
  size_t len = 0;
  ASSERT_EQ(speed_call(f, input, 1, &out, &len), SPEED_OK);
  speed_buffer_free(out);
  speed_function_destroy(f);

  char* snapshot = speed_metrics_snapshot();
  ASSERT_NE(snapshot, nullptr);
  const std::string json(snapshot);
  speed_buffer_free(reinterpret_cast<uint8_t*>(snapshot));

  // Valid-looking JSON carrying the instrumented families the deployment
  // in this fixture keeps alive (runtime, per-shard store, enclave EPC).
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back() == '\n' ? json[json.size() - 2] : json.back(), '}');
  EXPECT_NE(json.find("\"speed_runtime_calls_total\""), std::string::npos);
  EXPECT_NE(json.find("\"speed_store_get_requests_total\""), std::string::npos);
  EXPECT_NE(json.find("\"speed_epc_used_bytes\""), std::string::npos);
}

TEST_F(CapiTest, TwoFunctionsAreDistinctComputations) {
  int exec_a = 0, exec_b = 0;
  speed_function* fa = speed_function_create(dep_, "clib", "1.0", "variant-a",
                                             counting_reverse, &exec_a);
  speed_function* fb = speed_function_create(dep_, "clib", "1.0", "variant-b",
                                             counting_reverse, &exec_b);
  ASSERT_NE(fa, nullptr);
  ASSERT_NE(fb, nullptr);

  const uint8_t input[] = {'x', 'y'};
  uint8_t* out = nullptr;
  size_t len = 0;
  ASSERT_EQ(speed_call(fa, input, 2, &out, &len), SPEED_OK);
  speed_buffer_free(out);
  speed_flush(dep_);
  ASSERT_EQ(speed_call(fb, input, 2, &out, &len), SPEED_OK);
  speed_buffer_free(out);
  EXPECT_EQ(exec_a, 1);
  EXPECT_EQ(exec_b, 1) << "different signatures must not share results";

  speed_function_destroy(fa);
  speed_function_destroy(fb);
}

TEST(CapiClusterTest, ClusterSurvivesNodeKillAndRestart) {
  speed_deployment* dep = speed_deployment_create_cluster("capi-cluster", 3, 1);
  ASSERT_NE(dep, nullptr);
  ASSERT_EQ(speed_cluster_node_count(dep), 3u);
  ASSERT_EQ(speed_cluster_nodes_up(dep), 3u);

  const uint8_t code[] = "library code v1";
  ASSERT_EQ(speed_register_library(dep, "clib", "1.0", code, sizeof(code)),
            SPEED_OK);
  int executions = 0;
  speed_function* f = speed_function_create(
      dep, "clib", "1.0", "bytes reverse(bytes)", counting_reverse, &executions);
  ASSERT_NE(f, nullptr);

  const uint8_t input[] = {'c', 'l', 'u', 's'};
  uint8_t* out = nullptr;
  size_t len = 0;
  ASSERT_EQ(speed_call(f, input, sizeof(input), &out, &len), SPEED_OK);
  EXPECT_EQ(speed_last_was_deduplicated(f), 0);
  speed_buffer_free(out);
  ASSERT_EQ(speed_flush(dep), SPEED_OK);

  // The entry is now quorum-acked on 2 of 3 nodes: any single kill must not
  // lose it, and new work keeps flowing through the degraded cluster.
  ASSERT_EQ(speed_cluster_kill(dep, 1), SPEED_OK);
  EXPECT_EQ(speed_cluster_nodes_up(dep), 2u);
  ASSERT_EQ(speed_call(f, input, sizeof(input), &out, &len), SPEED_OK);
  EXPECT_EQ(speed_last_was_deduplicated(f), 1);
  EXPECT_EQ(executions, 1);
  speed_buffer_free(out);

  const uint8_t input2[] = {'m', 'o', 'r', 'e'};
  ASSERT_EQ(speed_call(f, input2, sizeof(input2), &out, &len), SPEED_OK);
  EXPECT_EQ(executions, 2);
  speed_buffer_free(out);
  ASSERT_EQ(speed_flush(dep), SPEED_OK);

  // Restart re-attests the fresh node and rejoins it into the ring.
  ASSERT_EQ(speed_cluster_restart(dep, 1), SPEED_OK);
  EXPECT_EQ(speed_cluster_nodes_up(dep), 3u);
  ASSERT_EQ(speed_call(f, input2, sizeof(input2), &out, &len), SPEED_OK);
  EXPECT_EQ(speed_last_was_deduplicated(f), 1);
  EXPECT_EQ(executions, 2);
  speed_buffer_free(out);

  EXPECT_EQ(speed_cluster_kill(dep, 7), SPEED_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(speed_cluster_restart(dep, 7), SPEED_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(speed_cluster_kill(nullptr, 0), SPEED_ERR_INVALID_ARGUMENT);

  speed_function_destroy(f);
  speed_deployment_destroy(dep);
}

TEST(CapiClusterTest, SingleStoreDeploymentHasNoClusterNodes) {
  speed_deployment* dep = speed_deployment_create("capi-noncluster");
  ASSERT_NE(dep, nullptr);
  EXPECT_EQ(speed_cluster_node_count(dep), 0u);
  EXPECT_EQ(speed_cluster_nodes_up(dep), 0u);
  EXPECT_EQ(speed_cluster_kill(dep, 0), SPEED_ERR_INVALID_ARGUMENT);
  speed_deployment_destroy(dep);
}

class CapiStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dep_ = speed_deployment_create("capi-stream-app");
    ASSERT_NE(dep_, nullptr);
    const uint8_t code[] = {'s', 't', 'r', 'e', 'a', 'm'};
    ASSERT_EQ(speed_register_library(dep_, "blob", "1.0", code, sizeof(code)),
              SPEED_OK);
    stream_ = speed_stream_create(dep_, "blob", "1.0",
                                  "bytes put_stream(bytes)", 0, 0, 0);
    ASSERT_NE(stream_, nullptr);
  }
  void TearDown() override {
    speed_stream_destroy(stream_);
    speed_deployment_destroy(dep_);
  }

  speed_deployment* dep_ = nullptr;
  speed_stream* stream_ = nullptr;
};

TEST_F(CapiStreamTest, PutGetRoundTrips) {
  std::vector<uint8_t> blob(300 * 1024);
  for (size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<uint8_t>(i * 2654435761u >> 13);
  }
  uint8_t* handle = nullptr;
  size_t handle_len = 0;
  ASSERT_EQ(speed_put_stream(stream_, blob.data(), blob.size(), &handle,
                             &handle_len),
            SPEED_OK);
  ASSERT_NE(handle, nullptr);
  EXPECT_GT(handle_len, 0u);

  uint8_t* data = nullptr;
  size_t data_len = 0;
  ASSERT_EQ(speed_get_stream(stream_, handle, handle_len, &data, &data_len),
            SPEED_OK);
  ASSERT_EQ(data_len, blob.size());
  EXPECT_EQ(std::memcmp(data, blob.data(), blob.size()), 0);
  speed_buffer_free(data);

  // An identical re-put is one whole-stream hit, visible in the stats.
  uint8_t* handle2 = nullptr;
  size_t handle2_len = 0;
  ASSERT_EQ(speed_put_stream(stream_, blob.data(), blob.size(), &handle2,
                             &handle2_len),
            SPEED_OK);
  speed_stream_stats stats{};
  ASSERT_EQ(speed_stream_stats_read(dep_, &stats), SPEED_OK);
  EXPECT_EQ(stats.puts, 2u);
  EXPECT_EQ(stats.whole_hits, 1u);
  EXPECT_EQ(stats.bytes_deduped, blob.size());
  EXPECT_GT(stats.chunks, 1u);
  speed_buffer_free(handle);
  speed_buffer_free(handle2);
}

TEST_F(CapiStreamTest, EmptyStreamRoundTrips) {
  uint8_t* handle = nullptr;
  size_t handle_len = 0;
  ASSERT_EQ(speed_put_stream(stream_, nullptr, 0, &handle, &handle_len),
            SPEED_OK);
  uint8_t* data = nullptr;
  size_t data_len = 1;
  ASSERT_EQ(speed_get_stream(stream_, handle, handle_len, &data, &data_len),
            SPEED_OK);
  EXPECT_EQ(data_len, 0u);
  speed_buffer_free(data);
  speed_buffer_free(handle);
}

TEST_F(CapiStreamTest, RejectsBadArguments) {
  // Unregistered library.
  EXPECT_EQ(speed_stream_create(dep_, "nope", "1.0", "sig", 0, 0, 0), nullptr);
  EXPECT_NE(std::strlen(speed_last_error(dep_)), 0u);
  // Invalid chunking config (avg not a power of two).
  EXPECT_EQ(
      speed_stream_create(dep_, "blob", "1.0", "sig", 1024, 3000, 8192),
      nullptr);
  // Null argument sweeps.
  EXPECT_EQ(speed_stream_create(nullptr, "blob", "1.0", "sig", 0, 0, 0),
            nullptr);
  uint8_t byte = 0;
  uint8_t* out = nullptr;
  size_t out_len = 0;
  EXPECT_EQ(speed_put_stream(nullptr, &byte, 1, &out, &out_len),
            SPEED_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(speed_put_stream(stream_, nullptr, 1, &out, &out_len),
            SPEED_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(speed_put_stream(stream_, &byte, 1, nullptr, &out_len),
            SPEED_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(speed_get_stream(stream_, nullptr, 0, &out, &out_len),
            SPEED_ERR_INVALID_ARGUMENT);
  // A garbage handle must fail cleanly, not crash.
  const uint8_t garbage[] = {9, 9, 9, 9};
  EXPECT_EQ(speed_get_stream(stream_, garbage, sizeof(garbage), &out, &out_len),
            SPEED_ERR_INVALID_ARGUMENT);
  speed_stream_stats stats{};
  EXPECT_EQ(speed_stream_stats_read(nullptr, &stats),
            SPEED_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(speed_stream_stats_read(dep_, nullptr),
            SPEED_ERR_INVALID_ARGUMENT);
}

}  // namespace
