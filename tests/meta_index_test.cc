// Differential model checking for the robin-hood MetaIndex.
//
// The index is the resident half of the store's two-tier metadata dictionary
// (store/meta_index.h); a probe-sequence bug here silently loses or
// duplicates store entries. The harness drives the index and a trivially
// correct model (std::unordered_map keyed by the (fp, loc) identity) through
// the same seedable operation stream — insert, lookup, erase, LRU-style
// eviction scans, spill/fault-in style repinning, bookkeeping mutation —
// with migration parked at adversarial mid-resize states, and demands
// bit-identical observable state plus structural invariants throughout.
//
// SPEED_TEST_SEED overrides the op stream (tests/test_seed.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "store/meta_index.h"
#include "test_seed.h"

namespace speed::store {
namespace {

serialize::Tag tag_of(std::uint64_t n) {
  serialize::Tag t{};
  for (int i = 0; i < 8; ++i) {
    t[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(n >> (8 * i));
  }
  t[31] = 0x5a;
  return t;
}

bool slot_equal(const MetaSlot& a, const MetaSlot& b) {
  return a.fp == b.fp && a.loc == b.loc && a.clock == b.clock &&
         a.blob_bytes == b.blob_bytes && a.owner_ref == b.owner_ref &&
         a.spill_len == b.spill_len && a.hits == b.hits;
}

/// Reference model: the (fp, loc) pair is the entry identity, exactly as the
/// store uses the index.
using Model = std::map<std::pair<std::uint64_t, std::uint64_t>, MetaSlot>;

/// Full observable-state comparison: every model entry findable with
/// bit-identical fields, and for_each visits exactly the model's entries.
void expect_bit_identical(MetaIndex& index, const Model& model) {
  ASSERT_EQ(index.size(), model.size());
  for (const auto& [key, slot] : model) {
    MetaSlot* found = index.find_loc(key.first, key.second);
    ASSERT_NE(found, nullptr)
        << "model entry missing: fp=" << key.first << " loc=" << key.second;
    EXPECT_TRUE(slot_equal(*found, slot))
        << "fields diverged: fp=" << key.first << " loc=" << key.second;
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> visited;
  static_cast<const MetaIndex&>(index).for_each(
      [&](const MetaSlot& s) { visited.emplace_back(s.fp, s.loc); });
  ASSERT_EQ(visited.size(), model.size());
  std::sort(visited.begin(), visited.end());
  auto it = model.begin();
  for (const auto& key : visited) {
    EXPECT_EQ(key, it->first);
    ++it;
  }
}

TEST(MetaIndexTest, FingerprintIsLittleEndianLowBytesNeverZero) {
  serialize::Tag t{};
  t[0] = 0x11;
  t[1] = 0x22;
  t[7] = 0x88;
  t[8] = 0xff;  // byte 8 is outside the fingerprint range
  EXPECT_EQ(MetaIndex::fingerprint(t), 0x8800000000002211ull);
  // An all-zero fingerprint range maps to the sentinel-avoiding value 1.
  serialize::Tag zero{};
  zero[30] = 0xcc;
  EXPECT_EQ(MetaIndex::fingerprint(zero), 1ull);
}

TEST(MetaIndexTest, DifferentialModelCheckOneMillionOps) {
  SPEED_SEEDED_RNG(rng, 0x3e7a1d8f0001ull);
  MetaIndex index;
  Model model;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> live;  // insert order
  std::uint64_t next_loc = 1;
  std::uint32_t clock = 0;
  std::uint64_t pinned_seq = 0;

  // A deliberately small fingerprint universe (~4k values over runs that
  // reach ~8k live entries) forces constant fingerprint collisions, the
  // regime where probe-sequence bugs live.
  const auto gen_fp = [&]() -> std::uint64_t {
    const std::uint64_t fp = 1 + rng.below(4096);
    return fp;
  };
  const auto pick_live = [&]() -> std::size_t {
    return static_cast<std::size_t>(rng.below(live.size()));
  };

  constexpr std::uint64_t kOps = 1'000'000;
  for (std::uint64_t op = 0; op < kOps; ++op) {
    const std::uint64_t dice = rng.below(100);
    if (dice < 40 || live.empty()) {
      // insert
      MetaSlot s;
      s.fp = gen_fp();
      s.loc = next_loc++;
      s.clock = ++clock;
      s.blob_bytes = static_cast<std::uint32_t>(rng.below(1 << 20));
      s.owner_ref = static_cast<std::uint32_t>(rng.below(64));
      s.spill_len = static_cast<std::uint16_t>(rng.below(4096));
      s.hits = 0;
      index.insert(s);
      model.emplace(std::make_pair(s.fp, s.loc), s);
      live.emplace_back(s.fp, s.loc);
    } else if (dice < 60) {
      // lookup present (fault-in / GET path): bit-identical fields
      const auto key = live[pick_live()];
      MetaSlot* found = index.find_loc(key.first, key.second);
      ASSERT_NE(found, nullptr) << "op " << op;
      ASSERT_TRUE(slot_equal(*found, model.at(key))) << "op " << op;
    } else if (dice < 68) {
      // lookup absent: same fp universe, never-issued loc
      EXPECT_EQ(index.find_loc(gen_fp(), next_loc + 1 + rng.below(1000)),
                nullptr);
    } else if (dice < 80) {
      // erase (store erase / drop-unreadable path)
      const std::size_t i = pick_live();
      const auto key = live[i];
      ASSERT_TRUE(index.erase_loc(key.first, key.second)) << "op " << op;
      model.erase(key);
      live[i] = live.back();
      live.pop_back();
      // double-erase must report absence
      EXPECT_FALSE(index.erase_loc(key.first, key.second));
    } else if (dice < 86) {
      // touch (GET hit): mutate bookkeeping fields in place, both sides
      const auto key = live[pick_live()];
      MetaSlot* found = index.find_loc(key.first, key.second);
      ASSERT_NE(found, nullptr);
      found->clock = ++clock;
      if (found->hits < 0xffff) ++found->hits;
      model.at(key) = *found;
    } else if (dice < 92) {
      // eviction scan: find the min-clock entry via for_each, erase it —
      // exactly the store's LRU victim walk.
      std::uint64_t best_fp = 0;
      std::uint64_t best_loc = 0;
      std::uint32_t best_clock = 0;
      bool found = false;
      index.for_each([&](const MetaSlot& s) {
        if (!found || s.clock < best_clock) {
          found = true;
          best_clock = s.clock;
          best_fp = s.fp;
          best_loc = s.loc;
        }
      });
      ASSERT_TRUE(found);
      ASSERT_TRUE(index.erase_loc(best_fp, best_loc));
      model.erase({best_fp, best_loc});
      live.erase(std::find(live.begin(), live.end(),
                           std::make_pair(best_fp, best_loc)));
    } else if (dice < 96) {
      // repin (spill-failure fallback): the entry's locator flips from a
      // packed spill ref to a kPinnedLocBit handle — erase + reinsert under
      // the same fingerprint, the store's pin path.
      const std::size_t i = pick_live();
      const auto key = live[i];
      MetaSlot s = model.at(key);
      ASSERT_TRUE(index.erase_loc(key.first, key.second));
      model.erase(key);
      s.loc = kPinnedLocBit | pinned_seq++;
      s.spill_len = 0;
      index.insert(s);
      model.emplace(std::make_pair(s.fp, s.loc), s);
      live[i] = {s.fp, s.loc};
    } else {
      // adversarial resize control: park the migration at a random point
      index.step_migration(rng.below(4));
    }

    if (op % 10'000 == 0) {
      const std::string violation = index.check_invariants();
      ASSERT_TRUE(violation.empty()) << "op " << op << ": " << violation;
      if (!index.migrating()) {
        EXPECT_LE(index.load_factor(),
                  static_cast<double>(MetaIndex::kMaxLoadNum) /
                      MetaIndex::kMaxLoadDen +
                      0.01);
      }
    }
    if (op % 50'000 == 0) {
      expect_bit_identical(index, model);
    }
  }
  expect_bit_identical(index, model);
  const std::string violation = index.check_invariants();
  EXPECT_TRUE(violation.empty()) << violation;
}

TEST(MetaIndexTest, IncrementalResizeServesLookupsMidMigration) {
  MetaIndex index;
  std::vector<MetaSlot> inserted;
  bool saw_migration = false;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    MetaSlot s;
    s.fp = MetaIndex::fingerprint(tag_of(i + 1));
    s.loc = i + 1;
    s.clock = static_cast<std::uint32_t>(i);
    index.insert(s);
    inserted.push_back(s);
    if (index.migrating()) {
      saw_migration = true;
      // Mid-resize, every previously inserted entry is still findable with
      // intact fields, across both tables.
      const MetaSlot& probe = inserted[inserted.size() / 2];
      MetaSlot* found = index.find_loc(probe.fp, probe.loc);
      ASSERT_NE(found, nullptr) << "i=" << i;
      EXPECT_TRUE(slot_equal(*found, probe));
    }
  }
  EXPECT_TRUE(saw_migration) << "growth never went through a migration";
  EXPECT_EQ(index.size(), 4096u);
  for (const MetaSlot& s : inserted) {
    ASSERT_NE(index.find_loc(s.fp, s.loc), nullptr);
  }
  EXPECT_TRUE(index.check_invariants().empty());
}

TEST(MetaIndexTest, RobinHoodKeepsProbeLengthsBounded) {
  SPEED_SEEDED_RNG(rng, 0x3e7a1d8f0002ull);
  MetaIndex index;
  for (std::uint64_t i = 0; i < 1 << 16; ++i) {
    MetaSlot s;
    s.fp = 1 + rng();
    s.loc = i + 1;
    index.insert(s);
  }
  // Drain any in-flight migration so the bound reflects a settled table at
  // the configured load factor.
  index.step_migration(~std::size_t{0});
  EXPECT_FALSE(index.migrating());
  // Robin-hood hashing at 7/8 load keeps worst-case probe length tiny
  // compared to plain linear probing (expected O(log n) vs O(n) tail).
  EXPECT_LE(index.max_probe_length(), 64u);
  EXPECT_TRUE(index.check_invariants().empty());
}

TEST(MetaIndexTest, BackwardShiftEraseKeepsCollidersReachable) {
  MetaIndex index;
  // Ten entries sharing one fingerprint: a worst-case collision cluster.
  const std::uint64_t fp = MetaIndex::fingerprint(tag_of(7));
  for (std::uint64_t loc = 1; loc <= 10; ++loc) {
    MetaSlot s;
    s.fp = fp;
    s.loc = loc;
    s.hits = static_cast<std::uint16_t>(loc);
    index.insert(s);
  }
  // Erase from the middle out; the survivors must stay reachable after every
  // step (backward-shift deletion, no tombstones).
  std::vector<std::uint64_t> gone;
  for (const std::uint64_t victim : {5ull, 1ull, 10ull, 7ull, 2ull}) {
    ASSERT_TRUE(index.erase_loc(fp, victim));
    gone.push_back(victim);
    ASSERT_TRUE(index.check_invariants().empty());
    for (std::uint64_t loc = 1; loc <= 10; ++loc) {
      const bool erased =
          std::find(gone.begin(), gone.end(), loc) != gone.end();
      MetaSlot* found = index.find_loc(fp, loc);
      ASSERT_EQ(found == nullptr, erased) << "loc " << loc;
    }
  }
  EXPECT_EQ(index.size(), 5u);
  for (const std::uint64_t loc : {3ull, 4ull, 6ull, 8ull, 9ull}) {
    MetaSlot* found = index.find_loc(fp, loc);
    ASSERT_NE(found, nullptr) << "loc " << loc;
    EXPECT_EQ(found->hits, loc);
  }
}

}  // namespace
}  // namespace speed::store
