// Tests for the simulated SGX runtime: measurements, transitions, EPC
// accounting, sealing, local attestation, and the trusted-library registry.
#include <gtest/gtest.h>

#include "sgx/enclave.h"
#include "sgx/trusted_library.h"

namespace speed::sgx {
namespace {

CostModel fast_model() {
  CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  m.epc_page_swap_ns = 0;
  return m;
}

TEST(MeasurementTest, DeterministicAndDistinct) {
  EXPECT_EQ(measure_identity("app-a"), measure_identity("app-a"));
  EXPECT_NE(measure_identity("app-a"), measure_identity("app-b"));
  EXPECT_NE(measure_identity("app"), measure_library("app", "", {}));
}

TEST(MeasurementTest, LibraryMeasurementBindsCode) {
  const Bytes code_a = to_bytes("code-bytes-a");
  const Bytes code_b = to_bytes("code-bytes-b");
  EXPECT_EQ(measure_library("zlib", "1.2.11", code_a),
            measure_library("zlib", "1.2.11", code_a));
  EXPECT_NE(measure_library("zlib", "1.2.11", code_a),
            measure_library("zlib", "1.2.11", code_b));
  EXPECT_NE(measure_library("zlib", "1.2.11", code_a),
            measure_library("zlib", "1.2.12", code_a));
}

TEST(EnclaveTest, MeasurementMatchesIdentity) {
  Platform platform(fast_model());
  auto enclave = platform.create_enclave("my-app");
  EXPECT_EQ(enclave->measurement(), measure_identity("my-app"));
  EXPECT_EQ(enclave->identity(), "my-app");
}

TEST(EnclaveTest, SameIdentitySameMeasurementAcrossPlatforms) {
  Platform p1(fast_model()), p2(fast_model());
  auto e1 = p1.create_enclave("app");
  auto e2 = p2.create_enclave("app");
  EXPECT_EQ(e1->measurement(), e2->measurement());
}

TEST(EnclaveTest, EcallOcallCountingAndReturnValues) {
  Platform platform(fast_model());
  auto enclave = platform.create_enclave("counter");
  const int x = enclave->ecall([] { return 41; }) + 1;
  EXPECT_EQ(x, 42);
  enclave->ecall([&] {
    enclave->ocall([] {});
    enclave->ocall([] {});
  });
  EXPECT_EQ(enclave->ecall_count(), 2u);
  EXPECT_EQ(enclave->ocall_count(), 2u);
}

TEST(EnclaveTest, TransitionCostIsCharged) {
  CostModel model;
  model.ecall_ns = 200000;  // 0.2 ms one-way, measurable
  model.ocall_ns = 0;
  Platform platform(model);
  auto enclave = platform.create_enclave("timed");
  Stopwatch sw;
  enclave->ecall([] {});
  EXPECT_GE(sw.elapsed_ns(), 350000u) << "EENTER+EEXIT should cost ~0.4ms";
}

TEST(EnclaveTest, DisabledCostModelChargesNothing) {
  Platform platform{CostModel::disabled()};
  auto enclave = platform.create_enclave("free");
  Stopwatch sw;
  for (int i = 0; i < 1000; ++i) enclave->ecall([] {});
  EXPECT_LT(sw.elapsed_ms(), 50.0);
}

TEST(EnclaveTest, ExceptionsPropagateAndStillExit) {
  Platform platform(fast_model());
  auto enclave = platform.create_enclave("thrower");
  EXPECT_THROW(enclave->ecall([]() -> int { throw Error("inside"); }), Error);
  // A further ecall still works (the transition guard unwound correctly).
  EXPECT_EQ(enclave->ecall([] { return 7; }), 7);
  EXPECT_EQ(enclave->ecall_count(), 2u);
}

TEST(SealTest, RoundTripSameEnclave) {
  Platform platform(fast_model());
  auto enclave = platform.create_enclave("sealer");
  const Bytes secret = to_bytes("enclave secret state");
  const Bytes sealed = enclave->seal(as_bytes("aad"), secret);
  const auto opened = enclave->unseal(as_bytes("aad"), sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, secret);
}

TEST(SealTest, SameMeasurementSamePlatformCanUnseal) {
  Platform platform(fast_model());
  auto e1 = platform.create_enclave("twin");
  auto e2 = platform.create_enclave("twin");
  const Bytes sealed = e1->seal({}, to_bytes("shared"));
  const auto opened = e2->unseal({}, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, to_bytes("shared"));
}

TEST(SealTest, DifferentMeasurementCannotUnseal) {
  Platform platform(fast_model());
  auto e1 = platform.create_enclave("app-a");
  auto e2 = platform.create_enclave("app-b");
  const Bytes sealed = e1->seal({}, to_bytes("private"));
  EXPECT_FALSE(e2->unseal({}, sealed).has_value());
}

TEST(SealTest, DifferentPlatformCannotUnseal) {
  Platform p1(fast_model()), p2(fast_model());
  auto e1 = p1.create_enclave("app");
  auto e2 = p2.create_enclave("app");
  const Bytes sealed = e1->seal({}, to_bytes("machine-bound"));
  EXPECT_FALSE(e2->unseal({}, sealed).has_value());
}

TEST(SealTest, TamperedSealedBlobRejected) {
  Platform platform(fast_model());
  auto enclave = platform.create_enclave("sealer");
  Bytes sealed = enclave->seal({}, to_bytes("data"));
  sealed[sealed.size() - 1] ^= 1;
  EXPECT_FALSE(enclave->unseal({}, sealed).has_value());
}

TEST(ReportTest, TargetVerifiesGenuineReport) {
  Platform platform(fast_model());
  auto source = platform.create_enclave("source-app");
  auto target = platform.create_enclave("store");
  const Bytes data = to_bytes("session-key-material");
  const Report r = source->create_report(target->measurement(), data);
  EXPECT_TRUE(target->verify_report(r));
  EXPECT_EQ(r.source_measurement, source->measurement());
}

TEST(ReportTest, WrongTargetCannotVerify) {
  Platform platform(fast_model());
  auto source = platform.create_enclave("source-app");
  auto target = platform.create_enclave("store");
  auto bystander = platform.create_enclave("other");
  const Report r = source->create_report(target->measurement(), {});
  EXPECT_FALSE(bystander->verify_report(r));
}

TEST(ReportTest, CrossPlatformReportRejected) {
  Platform p1(fast_model()), p2(fast_model());
  auto source = p1.create_enclave("app");
  auto target1 = p1.create_enclave("store");
  auto target2 = p2.create_enclave("store");
  const Report r = source->create_report(target1->measurement(), {});
  EXPECT_TRUE(target1->verify_report(r));
  EXPECT_FALSE(target2->verify_report(r)) << "reports are platform-local";
}

TEST(ReportTest, ForgedFieldsRejected) {
  Platform platform(fast_model());
  auto source = platform.create_enclave("app");
  auto target = platform.create_enclave("store");
  Report r = source->create_report(target->measurement(), to_bytes("data"));
  Report forged_meas = r;
  forged_meas.source_measurement[0] ^= 1;
  EXPECT_FALSE(target->verify_report(forged_meas));
  Report forged_data = r;
  forged_data.user_data[3] ^= 1;
  EXPECT_FALSE(target->verify_report(forged_data));
}

TEST(ReportTest, OversizedUserDataThrows) {
  Platform platform(fast_model());
  auto source = platform.create_enclave("app");
  const Bytes too_big(65, 0xaa);
  EXPECT_THROW(source->create_report(measure_identity("x"), too_big),
               EnclaveError);
}

TEST(EpcTest, TracksUsage) {
  CostModel model = fast_model();
  Platform platform(model);
  const std::uint64_t base = platform.epc().used_bytes();
  platform.epc().allocate(1 << 20);
  EXPECT_EQ(platform.epc().used_bytes(), base + (1 << 20));
  platform.epc().release(1 << 20);
  EXPECT_EQ(platform.epc().used_bytes(), base);
}

TEST(EpcTest, OverflowChargesPaging) {
  CostModel model;
  model.ecall_ns = 0;
  model.ocall_ns = 0;
  model.epc_usable_bytes = 1 << 20;  // 1 MB usable
  model.epc_page_swap_ns = 0;        // count pages, don't sleep
  Platform platform(model);
  platform.epc().allocate(2 << 20);  // 2 MB: 1 MB over
  EXPECT_GE(platform.epc().swapped_pages(), (1u << 20) / kEpcPageSize);
}

TEST(EpcTest, ReleaseNeverUnderflows) {
  Platform platform(fast_model());
  platform.epc().release(1 << 30);
  EXPECT_LT(platform.epc().used_bytes(), 1u << 30);
}

TEST(TrustedChargeTest, RaiiAccounting) {
  Platform platform(fast_model());
  auto enclave = platform.create_enclave("raii");
  const std::uint64_t base = platform.epc().used_bytes();
  {
    TrustedCharge charge(*enclave, 4096);
    EXPECT_EQ(platform.epc().used_bytes(), base + 4096);
    charge.resize(8192);
    EXPECT_EQ(platform.epc().used_bytes(), base + 8192);
    charge.resize(1024);
    EXPECT_EQ(platform.epc().used_bytes(), base + 1024);
  }
  EXPECT_EQ(platform.epc().used_bytes(), base);
}

TEST(TrustedLibraryTest, LookupAfterRegister) {
  TrustedLibraryRegistry reg;
  EXPECT_FALSE(reg.lookup("zlib", "1.2.11").has_value());
  reg.register_library("zlib", "1.2.11", as_bytes("deflate code"));
  const auto m = reg.lookup("zlib", "1.2.11");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, measure_library("zlib", "1.2.11", as_bytes("deflate code")));
  EXPECT_FALSE(reg.lookup("zlib", "1.2.12").has_value());
  EXPECT_EQ(reg.size(), 1u);
}

TEST(TrustedLibraryTest, FamilyVersionCannotCollide) {
  TrustedLibraryRegistry reg;
  reg.register_library("ab", "c", as_bytes("x"));
  EXPECT_FALSE(reg.lookup("a", "bc").has_value());
}

TEST(EnclaveTest, RandomBytesDiffer) {
  Platform platform(fast_model());
  auto enclave = platform.create_enclave("rng");
  EXPECT_NE(enclave->random_bytes(32), enclave->random_bytes(32));
  EXPECT_EQ(enclave->random_bytes(17).size(), 17u);
}

}  // namespace
}  // namespace speed::sgx
