// Tests for the common substrate: byte helpers, hex codec, RNG, Zipf.
#include <gtest/gtest.h>

#include <map>

#include "common/bytes.h"
#include "common/rng.h"

namespace speed {
namespace {

TEST(BytesTest, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x10};
  EXPECT_EQ(hex_encode(data), "0001abff10");
  EXPECT_EQ(hex_decode("0001abff10"), data);
  EXPECT_EQ(hex_decode("0001ABFF10"), data);
}

TEST(BytesTest, HexDecodeRejectsBadInput) {
  EXPECT_THROW(hex_decode("abc"), std::invalid_argument);
  EXPECT_THROW(hex_decode("zz"), std::invalid_argument);
}

TEST(BytesTest, ConcatPreservesOrder) {
  EXPECT_EQ(concat(to_bytes("ab"), to_bytes(""), to_bytes("cd")),
            to_bytes("abcd"));
}

TEST(BytesTest, CtEqualBasics) {
  EXPECT_TRUE(ct_equal(to_bytes("same"), to_bytes("same")));
  EXPECT_FALSE(ct_equal(to_bytes("same"), to_bytes("sama")));
  EXPECT_FALSE(ct_equal(to_bytes("short"), to_bytes("longer")));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(BytesTest, XorBytes) {
  const Bytes a = {0xff, 0x00, 0xaa};
  const Bytes b = {0x0f, 0xf0, 0xaa};
  EXPECT_EQ(xor_bytes(a, b), (Bytes{0xf0, 0xf0, 0x00}));
  EXPECT_EQ(xor_bytes(xor_bytes(a, b), b), a) << "xor is involutive";
  EXPECT_THROW(xor_bytes(a, to_bytes("toolonginput")), std::invalid_argument);
}

TEST(BytesTest, StringViewsShareStorage) {
  const std::string s = "hello";
  const ByteView v = as_bytes(s);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(to_string(v), s);
}

TEST(RngTest, DeterministicPerSeed) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  bool differs = false;
  Xoshiro256 a2(42);
  for (int i = 0; i < 100; ++i) differs |= (a2() != c());
  EXPECT_TRUE(differs);
}

TEST(RngTest, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(RngTest, UniformInUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, BytesLengthAndVariety) {
  Xoshiro256 rng(11);
  const Bytes b = rng.bytes(1000);
  EXPECT_EQ(b.size(), 1000u);
  std::map<std::uint8_t, int> hist;
  for (auto v : b) hist[v]++;
  EXPECT_GT(hist.size(), 200u) << "1000 random bytes should hit most values";
}

TEST(RngTest, AsciiIsPrintable) {
  Xoshiro256 rng(13);
  const std::string s = rng.ascii(500);
  EXPECT_EQ(s.size(), 500u);
  for (char c : s) EXPECT_TRUE(c >= 32 && c < 127);
}

TEST(ZipfTest, RankZeroIsMostPopular) {
  Xoshiro256 rng(17);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) counts[zipf(rng)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(ZipfTest, ZeroSkewIsUniformish) {
  Xoshiro256 rng(19);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) counts[zipf(rng)]++;
  for (int c : counts) EXPECT_NEAR(c, kN / 10, kN / 10 * 0.15);
}

TEST(ZipfTest, RejectsDegenerateParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace speed
