// Chaos suite (ctest -L chaos): randomized kill/restart/partition churn over
// a replicated N=3, r=1 cluster under a seeded workload, asserting the
// acceptance invariants of docs/PROTOCOL.md §8:
//
//   * zero acked-result loss — every PUT the cluster ACKNOWLEDGED (full
//     quorum) stays readable through any single-node kill, restart, and
//     partition, at every point in the run;
//   * bounded degradation — a total outage degrades marked calls to local
//     compute (never an application-visible error) and service resumes as
//     soon as one node returns;
//   * convergent rejoin — a restarted node re-attests, pulls exactly its
//     ring share back, and the cluster returns to full replication.
//
// All randomness flows from SPEED_SEEDED_RNG: a failure prints the seed and
// SPEED_TEST_SEED=<seed> replays the identical kill schedule and workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "net/cluster.h"
#include "runtime/speed.h"
#include "store/inproc_cluster.h"
#include "test_seed.h"

namespace speed {
namespace {

using net::ClusterTransport;
using serialize::GetRequest;
using serialize::GetResponse;
using serialize::Message;
using serialize::PutRequest;
using serialize::PutResponse;
using serialize::PutStatus;
using serialize::Tag;

sgx::CostModel fast_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  m.epc_page_swap_ns = 0;
  return m;
}

net::ResilienceConfig chaos_resilience() {
  net::ResilienceConfig rc;
  rc.reconnect_attempts = 2;
  rc.backoff_initial_ms = 0;
  rc.backoff_max_ms = 1;
  // High threshold: the walk's own failover handles dead nodes; the breaker
  // exists for real deployments where redials cost milliseconds.
  rc.breaker_threshold = 10'000;
  rc.breaker_cooldown_ms = 1;
  return rc;
}

struct ChaosCluster {
  explicit ChaosCluster(std::size_t nodes, std::size_t replicas = 1)
      : platform(fast_model()) {
    store::InprocClusterConfig cc;
    cc.nodes = nodes;
    cc.cluster.replicas = replicas;
    cc.cluster.probe_interval_ms = 0;  // never skip a node inside the walk
    cc.cluster.resilience = chaos_resilience();
    // Anti-entropy rounds must cover EVERY entry (not just the hottest 64):
    // the zero-loss invariant across repeated kills needs each heal to put
    // sloppily-placed entries back on all their ring owners.
    cc.replication.hot_entries = 100'000;
    cluster.emplace(platform, cc);
    app = platform.create_enclave("chaos-app");
    transport = cluster->connect(*app);
  }

  Tag random_tag(Xoshiro256& rng) {
    Tag t;
    for (auto& b : t) b = static_cast<std::uint8_t>(rng());
    return t;
  }

  Message call(const Message& request) {
    return app->ecall([&] { return transport->round_trip_message(request); });
  }

  /// One PUT; returns true iff the cluster ACKNOWLEDGED it (full quorum).
  bool put_acked(const Tag& tag) {
    PutRequest req;
    req.tag = tag;
    req.requester = app->measurement();
    req.entry.challenge = Bytes{7, 7};
    req.entry.wrapped_key = Bytes(16, 0x31);
    req.entry.result_ct = Bytes(40, 0xab);
    const Message m = call(req);
    const auto* resp = std::get_if<PutResponse>(&m);
    return resp != nullptr && (resp->status == PutStatus::kStored ||
                               resp->status == PutStatus::kAlreadyPresent);
  }

  bool get_found(const Tag& tag) {
    GetRequest req;
    req.tag = tag;
    req.requester = app->measurement();
    const Message m = call(req);
    const auto* resp = std::get_if<GetResponse>(&m);
    return resp != nullptr && resp->found;
  }

  sgx::Platform platform;
  std::optional<store::InprocCluster> cluster;
  std::unique_ptr<sgx::Enclave> app;
  std::shared_ptr<ClusterTransport> transport;
};

TEST(ChaosClusterTest, KillRestartChurnLosesNoAckedResult) {
  SPEED_SEEDED_RNG(rng, 0xC1A05'0001ull);
  ChaosCluster c(3, 1);
  std::vector<Tag> acked;
  std::uint64_t get_attempts = 0;
  std::uint64_t get_found = 0;

  // Mixed workload: ~40% new PUTs, ~60% GETs of already-acked tags. Every
  // GET of an acked tag MUST find it — that is the zero-loss invariant.
  const auto workload = [&](int ops) {
    for (int i = 0; i < ops; ++i) {
      const bool do_put = acked.empty() || rng() % 10 < 4;
      if (do_put) {
        const Tag t = c.random_tag(rng);
        if (c.put_acked(t)) acked.push_back(t);
      } else {
        const Tag& t = acked[rng() % acked.size()];
        ++get_attempts;
        if (c.get_found(t)) ++get_found;
      }
    }
  };
  const auto verify_all_acked = [&](const char* when) {
    for (const Tag& t : acked) {
      ++get_attempts;
      if (c.get_found(t)) {
        ++get_found;
      } else {
        ADD_FAILURE() << "acked entry lost (" << when << ", "
                      << acked.size() << " acked)";
      }
    }
  };

  constexpr int kRounds = 6;
  for (int round = 0; round < kRounds; ++round) {
    // Healthy phase.
    workload(30);

    // Kill one random node mid-workload (sometimes via partition, which
    // keeps its state; sometimes a real kill, which loses it on restart).
    const std::size_t victim = rng() % 3;
    const bool use_partition = rng() % 4 == 0;
    if (use_partition) {
      c.cluster->partition(victim, true);
    } else {
      c.cluster->kill(victim);
    }

    // Degraded phase: PUTs still reach full quorum on the two live nodes
    // (sloppy placement); every previously-acked entry keeps a live copy.
    workload(30);
    verify_all_acked("single node down");

    // Heal: partition heals in place; a killed node restarts EMPTY, must
    // re-attest, and pulls its ring share back before the next round may
    // kill a different node (otherwise a second failure could erase both
    // copies — the documented r=1 fault model is one failure at a time).
    if (use_partition) {
      c.cluster->partition(victim, false);
    } else {
      ASSERT_TRUE(c.cluster->restart(victim)) << "re-attestation failed";
      c.cluster->rejoin(victim);
    }
    c.cluster->anti_entropy_round();
    verify_all_acked("after heal");
  }

  ASSERT_GT(acked.size(), 50u);
  ASSERT_GT(get_attempts, 0u);
  // Acceptance: >99% GET availability for acked entries. (In-process the
  // walk is loss-free, so this holds with margin; the assert pins it.)
  EXPECT_EQ(get_found, get_attempts);
  EXPECT_GT(c.transport->stats().failovers, 0u);
}

TEST(ChaosClusterTest, TotalOutageDegradesToComputeAndRecovers) {
  SPEED_SEEDED_RNG(rng, 0xC1A05'0002ull);
  ChaosCluster c(3, 1);

  runtime::RuntimeConfig rc;
  rc.local_cache = false;
  rc.async_put = false;  // synchronous PUTs: store state is deterministic
  runtime::DedupRuntime rt(*c.app, c.transport, rc);
  rt.libraries().register_library("chaoslib", "1.0", as_bytes("code"));
  const auto fn = rt.resolve({"chaoslib", "1.0", "Bytes f(Bytes)"});
  const Bytes input{5, 4, 3, 2, 1};
  int computes = 0;
  const auto compute = [&]() -> Bytes {
    ++computes;
    return Bytes{42};
  };

  // Warm: miss + PUT, then a store hit.
  EXPECT_FALSE(rt.execute(fn, input, compute).deduplicated);
  EXPECT_TRUE(rt.execute(fn, input, compute).deduplicated);
  EXPECT_EQ(computes, 1);

  // Total outage: marked calls DEGRADE (correct result, computed locally) —
  // never an error into the application.
  for (std::size_t n = 0; n < 3; ++n) c.cluster->kill(n);
  const auto degraded = rt.execute(fn, input, compute);
  EXPECT_FALSE(degraded.deduplicated);
  EXPECT_EQ(degraded.result, Bytes{42});
  EXPECT_EQ(computes, 2);
  EXPECT_GE(rt.stats().degraded_calls, 1u);

  // One node back is enough to resume service (quorum for GETs is walked,
  // misses are definitive). The store state was lost with the kill, so the
  // first call recomputes; with only one node up the PUT stays below quorum
  // (never falsely acked), so calls keep recomputing but never error.
  ASSERT_TRUE(c.cluster->restart(0));
  const auto after_one = rt.execute(fn, input, compute);
  EXPECT_FALSE(after_one.deduplicated);
  EXPECT_EQ(after_one.result, Bytes{42});

  // Full cluster back: dedup resumes. (The below-quorum PUT above may have
  // left a copy on node 0 — an UNacked copy surviving is fine, only an
  // acked copy being lost violates the invariant — so the first call may
  // already hit; either way the result is right and dedup then sticks.)
  ASSERT_TRUE(c.cluster->restart(1));
  ASSERT_TRUE(c.cluster->restart(2));
  c.cluster->rejoin(1);
  EXPECT_EQ(rt.execute(fn, input, compute).result, Bytes{42});
  EXPECT_TRUE(rt.execute(fn, input, compute).deduplicated);
}

TEST(ChaosClusterTest, RejoiningNodeReattestsAndConvergesToRingShare) {
  SPEED_SEEDED_RNG(rng, 0xC1A05'0003ull);
  ChaosCluster c(3, 1);
  std::vector<Tag> tags;
  for (int i = 0; i < 60; ++i) {
    const Tag t = c.random_tag(rng);
    ASSERT_TRUE(c.put_acked(t));
    tags.push_back(t);
  }
  const std::size_t victim = rng() % 3;
  std::size_t share = 0;
  for (const Tag& t : tags) {
    auto order = c.transport->preference_order(t);
    order.resize(2);
    if (std::find(order.begin(), order.end(), victim) != order.end()) ++share;
  }
  ASSERT_GT(share, 0u);

  const std::uint64_t old_incarnation = c.cluster->incarnation(victim);
  const std::uint64_t old_epoch = c.cluster->replicator().epoch();
  c.cluster->kill(victim);
  ASSERT_TRUE(c.cluster->restart(victim));  // mutual re-attestation passed
  EXPECT_EQ(c.cluster->incarnation(victim), old_incarnation + 1);
  EXPECT_EQ(c.cluster->store(victim).stats().entries, 0u);

  const std::size_t merged = c.cluster->rejoin(victim);
  EXPECT_GT(c.cluster->replicator().epoch(), old_epoch);
  // Convergence: the node pulled exactly the tags the ring assigns it.
  EXPECT_EQ(merged, share);
  EXPECT_EQ(c.cluster->store(victim).stats().entries, share);

  // And the rebuilt node serves them: kill the OTHER owner of each tag and
  // the cluster still answers every GET.
  const std::size_t other = (victim + 1) % 3;
  c.cluster->kill(other);
  for (const Tag& t : tags) {
    EXPECT_TRUE(c.get_found(t));
  }
}

TEST(ChaosClusterTest, FlappingPartitionsNeverLoseAckedEntries) {
  SPEED_SEEDED_RNG(rng, 0xC1A05'0004ull);
  ChaosCluster c(3, 1);
  std::vector<Tag> acked;
  // Rapid partition flaps (state never lost, only reachability) interleaved
  // with workload: the walk must route around whatever is dark right now.
  for (int round = 0; round < 20; ++round) {
    const std::size_t victim = rng() % 3;
    c.cluster->partition(victim, true);
    for (int i = 0; i < 8; ++i) {
      const Tag t = c.random_tag(rng);
      if (c.put_acked(t)) acked.push_back(t);
      if (!acked.empty()) {
        EXPECT_TRUE(c.get_found(acked[rng() % acked.size()]));
      }
    }
    c.cluster->partition(victim, false);
  }
  ASSERT_GT(acked.size(), 100u);
  for (const Tag& t : acked) EXPECT_TRUE(c.get_found(t));
}

}  // namespace
}  // namespace speed
