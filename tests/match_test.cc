// Tests for the pattern-matching substrate: Aho–Corasick vs a naive oracle,
// the regex engine against expected semantics, rule parsing, and full
// rule-set scans over synthetic traces.
#include <gtest/gtest.h>

#include <numeric>

#include "apps/match/aho_corasick.h"
#include "apps/match/regex.h"
#include "apps/match/ruleset.h"
#include "common/rng.h"
#include "workload/synthetic.h"

namespace speed::match {
namespace {

// ------------------------------------------------------------ Aho-Corasick

std::vector<Bytes> patterns_of(std::initializer_list<const char*> list) {
  std::vector<Bytes> out;
  for (const char* p : list) out.push_back(to_bytes(p));
  return out;
}

TEST(AhoCorasickTest, FindsAllOccurrencesIncludingOverlaps) {
  const AhoCorasick ac(patterns_of({"he", "she", "his", "hers"}));
  const auto matches = ac.find_all(as_bytes("ushers"));
  // Classic example: "she" at 4, "he" at 4, "hers" at 6.
  ASSERT_EQ(matches.size(), 3u);
  std::vector<std::pair<std::size_t, std::size_t>> got;
  for (const auto& m : matches) got.emplace_back(m.pattern_index, m.end_offset);
  EXPECT_NE(std::find(got.begin(), got.end(), std::make_pair<std::size_t, std::size_t>(1, 4)), got.end());
  EXPECT_NE(std::find(got.begin(), got.end(), std::make_pair<std::size_t, std::size_t>(0, 4)), got.end());
  EXPECT_NE(std::find(got.begin(), got.end(), std::make_pair<std::size_t, std::size_t>(3, 6)), got.end());
}

TEST(AhoCorasickTest, DistinctBitmap) {
  const AhoCorasick ac(patterns_of({"abc", "zzz", "b"}));
  const auto hit = ac.find_distinct(as_bytes("xxabcxx"));
  EXPECT_TRUE(hit[0]);
  EXPECT_FALSE(hit[1]);
  EXPECT_TRUE(hit[2]);
}

TEST(AhoCorasickTest, RejectsEmptyPattern) {
  EXPECT_THROW(AhoCorasick(patterns_of({"ok", ""})), Error);
}

TEST(AhoCorasickTest, BinaryPatterns) {
  std::vector<Bytes> pats = {{0x00, 0xff, 0x00}, {0xde, 0xad}};
  const AhoCorasick ac(pats);
  Bytes text = {0x01, 0x00, 0xff, 0x00, 0xde, 0xad, 0x00};
  const auto hits = ac.find_distinct(text);
  EXPECT_TRUE(hits[0]);
  EXPECT_TRUE(hits[1]);
}

TEST(AhoCorasickTest, AgreesWithNaiveOracleOnRandomData) {
  Xoshiro256 rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    // Small alphabet to force plenty of matches and shared prefixes.
    std::vector<Bytes> patterns;
    const std::size_t n_patterns = 2 + rng.below(10);
    for (std::size_t i = 0; i < n_patterns; ++i) {
      const std::size_t len = 1 + rng.below(4);
      Bytes p;
      for (std::size_t j = 0; j < len; ++j) {
        p.push_back(static_cast<std::uint8_t>('a' + rng.below(3)));
      }
      patterns.push_back(p);
    }
    Bytes text;
    for (int j = 0; j < 500; ++j) {
      text.push_back(static_cast<std::uint8_t>('a' + rng.below(3)));
    }

    const AhoCorasick ac(patterns);
    auto got = ac.find_all(text);
    std::vector<AcMatch> expected;
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      const Bytes& pat = patterns[p];
      for (std::size_t i = 0; i + pat.size() <= text.size(); ++i) {
        if (std::equal(pat.begin(), pat.end(), text.begin() + static_cast<long>(i))) {
          expected.push_back(AcMatch{p, i + pat.size()});
        }
      }
    }
    const auto key = [](const AcMatch& m) {
      return std::make_pair(m.end_offset, m.pattern_index);
    };
    std::sort(got.begin(), got.end(), [&](const auto& a, const auto& b) { return key(a) < key(b); });
    std::sort(expected.begin(), expected.end(), [&](const auto& a, const auto& b) { return key(a) < key(b); });
    ASSERT_EQ(got.size(), expected.size()) << "trial " << trial;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].pattern_index, expected[i].pattern_index);
      EXPECT_EQ(got[i].end_offset, expected[i].end_offset);
    }
  }
}

// ------------------------------------------------------------------ regex

struct RegexCase {
  const char* name;
  const char* pattern;
  const char* text;
  bool expect;
};

const RegexCase kRegexCases[] = {
    {"literal_hit", "abc", "xxabcxx", true},
    {"literal_miss", "abc", "ab c", false},
    {"dot", "a.c", "azc", true},
    {"dot_not_newline", "a.c", "a\nc", false},
    {"star", "ab*c", "ac", true},
    {"star_many", "ab*c", "abbbbc", true},
    {"plus_needs_one", "ab+c", "ac", false},
    {"plus_hit", "ab+c", "abbc", true},
    {"question", "colou?r", "color", true},
    {"question2", "colou?r", "colour", true},
    {"class", "[abc]+", "zzzb", true},
    {"class_range", "[a-f0-9]{4}", "xxxdead", true},
    {"class_negated", "[^0-9]", "123a", true},
    {"class_negated_miss", "^[^0-9]+$", "12a3", false},
    {"digit", "\\d{3}", "ab123", true},
    {"word", "\\w+@\\w+", "mail me@host now", true},
    {"space", "a\\sb", "a b", true},
    {"anchor_start", "^GET", "GET /x", true},
    {"anchor_start_miss", "^GET", "xGET /x", false},
    {"anchor_end", "php$", "index.php", true},
    {"anchor_end_miss", "php$", "index.php?q=1", false},
    {"alt", "cat|dog", "hotdog", true},
    {"alt_anchored_branch", "^a|b", "xb", true},
    {"group_star", "(ab)+", "xxababx", true},
    {"group_alt", "(GET|POST) /", "POST /form", true},
    {"bound_exact", "a{3}", "aa", false},
    {"bound_exact_hit", "a{3}", "aaa", true},
    {"bound_range", "a{2,3}b", "aaab", true},
    {"bound_min", "x{2,}", "axxa", true},
    {"hex_escape", "\\x41\\x42", "zAB", true},
    {"escaped_dot", "1\\.5", "1.5", true},
    {"escaped_dot_miss", "1\\.5", "1x5", false},
    {"nop_sled", "\\x90{8,}", "\x90\x90\x90\x90\x90\x90\x90\x90\x90", true},
    {"url_rule", "GET /[a-z0-9_]{4,}\\.php", "GET /admin_x1.php HTTP/1.1", true},
    {"backtracking", "a.*c.*e", "abcde", true},
    {"empty_pattern", "", "anything", true},
    {"literal_brace", "a{x}", "za{x}z", true},
};

class RegexCaseTest : public ::testing::TestWithParam<RegexCase> {};

TEST_P(RegexCaseTest, Matches) {
  const auto& c = GetParam();
  const Regex re(c.pattern);
  EXPECT_EQ(re.search(std::string_view(c.text)), c.expect)
      << "/" << c.pattern << "/ on \"" << c.text << "\"";
}

INSTANTIATE_TEST_SUITE_P(Cases, RegexCaseTest, ::testing::ValuesIn(kRegexCases),
                         [](const auto& info) { return info.param.name; });

TEST(RegexTest, SyntaxErrors) {
  EXPECT_THROW(Regex("("), RegexSyntaxError);
  EXPECT_THROW(Regex("a)"), RegexSyntaxError);
  EXPECT_THROW(Regex("["), RegexSyntaxError);
  EXPECT_THROW(Regex("*a"), RegexSyntaxError);
  EXPECT_THROW(Regex("a{3,1}"), RegexSyntaxError);
  EXPECT_THROW(Regex("[z-a]"), RegexSyntaxError);
  EXPECT_THROW(Regex("\\x4"), RegexSyntaxError);
  EXPECT_THROW(Regex("a\\"), RegexSyntaxError);
  EXPECT_THROW(Regex("^*"), RegexSyntaxError);
}

TEST(RegexTest, StepBudgetStopsPathologicalBacktracking) {
  // (a+)+$ against a long non-matching string is exponential for naive
  // backtracking; the budget must stop it deterministically.
  const Regex re("(a+)+$", /*step_budget=*/100000);
  const std::string attack(64, 'a');
  EXPECT_THROW(re.search(attack + "b"), RegexBudgetError);
}

TEST(RegexTest, BinaryInputs) {
  const Regex re("\\x00{4}");
  const Bytes zeros(8, 0x00);
  EXPECT_TRUE(re.search(ByteView(zeros)));
  const Bytes ones(8, 0x01);
  EXPECT_FALSE(re.search(ByteView(ones)));
}

// ------------------------------------------------------------------ rules

TEST(RuleParseTest, FullRuleLine) {
  const Rule r = parse_rule(
      R"(alert 2001 "exploit probe" content:"cmd.exe"; content:"|90 90 90|"; pcre:"GET /[a-z]+";)");
  EXPECT_EQ(r.id, 2001u);
  EXPECT_EQ(r.message, "exploit probe");
  ASSERT_EQ(r.contents.size(), 2u);
  EXPECT_EQ(r.contents[0], to_bytes("cmd.exe"));
  EXPECT_EQ(r.contents[1], (Bytes{0x90, 0x90, 0x90}));
  ASSERT_TRUE(r.pcre.has_value());
  EXPECT_EQ(*r.pcre, "GET /[a-z]+");
}

TEST(RuleParseTest, EscapedQuotesAndErrors) {
  const Rule r = parse_rule(R"(alert 7 "say \"hi\"" content:"a\"b";)");
  EXPECT_EQ(r.contents[0], to_bytes("a\"b"));

  EXPECT_THROW(parse_rule("drop 1 \"x\" content:\"a\";"), Error);
  EXPECT_THROW(parse_rule("alert x \"m\" content:\"a\";"), Error);
  EXPECT_THROW(parse_rule("alert 1 \"m\""), Error);
  EXPECT_THROW(parse_rule("alert 1 \"m\" bogus:\"a\";"), Error);
  EXPECT_THROW(parse_rule("alert 1 \"m\" content:\"|9|\";"), Error);
}

TEST(RuleSetTest, AllContentsRequired) {
  std::vector<Rule> rules;
  rules.push_back(parse_rule(R"(alert 1 "two contents" content:"foo"; content:"bar";)"));
  const RuleSet rs(std::move(rules));
  EXPECT_TRUE(rs.scan(as_bytes("xx foo yy bar zz")) ==
              std::vector<std::uint32_t>{1});
  EXPECT_TRUE(rs.scan(as_bytes("xx foo yy")).empty());
  EXPECT_TRUE(rs.scan(as_bytes("bar only")).empty());
}

TEST(RuleSetTest, PcreConfirmationGate) {
  std::vector<Rule> rules;
  rules.push_back(parse_rule(R"(alert 5 "php probe" content:"GET"; pcre:"GET /[a-z]{8,}\.php";)"));
  const RuleSet rs(std::move(rules));
  EXPECT_EQ(rs.scan(as_bytes("GET /verylongname.php HTTP/1.1")).size(), 1u);
  EXPECT_TRUE(rs.scan(as_bytes("GET /a.php")).empty())
      << "content hit but regex fails";
}

TEST(RuleSetTest, PcreOnlyRule) {
  std::vector<Rule> rules;
  rules.push_back(parse_rule(R"(alert 9 "regex only" pcre:"\d{6}";)"));
  const RuleSet rs(std::move(rules));
  EXPECT_EQ(rs.scan(as_bytes("id=123456")).size(), 1u);
  EXPECT_TRUE(rs.scan(as_bytes("id=123")).empty());
}

TEST(RuleSetTest, ManyRulesDistinctIds) {
  const auto rules = workload::synth_ruleset(200, /*seed=*/11);
  ASSERT_EQ(rules.size(), 200u);
  const RuleSet rs(rules);
  EXPECT_EQ(rs.rule_count(), 200u);

  // A payload embedding rule 0's contents fires exactly that rule.
  Bytes payload = to_bytes("prefix ");
  for (const Bytes& c : rules[0].contents) {
    append(payload, c);
    append(payload, as_bytes(" "));
  }
  if (!rules[0].pcre.has_value()) {
    const auto fired = rs.scan(payload);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], rules[0].id);
  }
}

TEST(RuleSetTest, SyntheticTraceProducesAlerts) {
  const auto rules = workload::synth_ruleset(100, 13);
  const RuleSet rs(rules);
  const auto trace = workload::synth_packet_trace(300, 256, rules,
                                                  /*hit_fraction=*/0.3, 17);
  std::vector<Bytes> payloads;
  for (const auto& p : trace) payloads.push_back(p.payload);
  const auto counts = rs.scan_batch(payloads);
  const std::uint64_t total = std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  EXPECT_GT(total, 30u) << "~30% of packets embed rule contents";
  EXPECT_LT(total, 600u);
}

TEST(RuleSetTest, CleanTraceProducesNoAlerts) {
  const auto rules = workload::synth_ruleset(50, 19);
  const RuleSet rs(rules);
  const auto trace = workload::synth_packet_trace(100, 256, rules,
                                                  /*hit_fraction=*/0.0, 23);
  for (const auto& p : trace) {
    EXPECT_TRUE(rs.scan(p.payload).empty());
  }
}

TEST(PacketTest, SerdeRoundTrip) {
  const auto rules = workload::synth_ruleset(5, 1);
  const auto trace = workload::synth_packet_trace(10, 128, rules, 0.5, 3);
  const Bytes data = serialize::serialize(trace);
  EXPECT_EQ(serialize::deserialize<PacketTrace>(data), trace);
}

}  // namespace
}  // namespace speed::match
