// Replicated cluster tests: rendezvous routing, sloppy-quorum PUT acks,
// GET failover + read-repair, health probes, membership epochs, resumable
// bulk pulls, infra-plane role gating, and hedged GETs
// (docs/PROTOCOL.md §8). The randomized chaos suite lives in
// chaos_cluster_test.cc.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "net/cluster.h"
#include "runtime/speed.h"
#include "store/inproc_cluster.h"
#include "test_seed.h"

namespace speed {
namespace {

using net::ClusterTransport;
using serialize::GetRequest;
using serialize::GetResponse;
using serialize::Message;
using serialize::PutRequest;
using serialize::PutResponse;
using serialize::PutStatus;
using serialize::Tag;

sgx::CostModel fast_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  m.epc_page_swap_ns = 0;
  return m;
}

net::ResilienceConfig fast_resilience() {
  net::ResilienceConfig rc;
  rc.reconnect_attempts = 2;
  rc.backoff_initial_ms = 0;
  rc.backoff_max_ms = 1;
  rc.breaker_threshold = 100;  // the cluster walk handles failover; don't
                               // let per-link breakers mask it in unit tests
  rc.breaker_cooldown_ms = 1;
  return rc;
}

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : platform_(fast_model()) {}

  void build(std::size_t nodes, std::size_t replicas,
             net::ClusterConfig net_config = net::ClusterConfig{},
             store::ReplicationConfig repl = store::ReplicationConfig{},
             store::StoreConfig store_config = store::StoreConfig{}) {
    store::InprocClusterConfig cc;
    cc.nodes = nodes;
    cc.store = std::move(store_config);
    cc.cluster = net_config;
    cc.cluster.replicas = replicas;
    cc.cluster.resilience = fast_resilience();
    cc.replication = repl;
    cluster_.emplace(platform_, cc);
    app_ = platform_.create_enclave("cluster-app");
    transport_ = cluster_->connect(*app_);
  }

  Tag random_tag(Xoshiro256& rng) {
    Tag t;
    for (auto& b : t) b = static_cast<std::uint8_t>(rng());
    return t;
  }

  Message call(const Message& request) {
    return app_->ecall([&] { return transport_->round_trip_message(request); });
  }

  PutStatus put(const Tag& tag) {
    PutRequest req;
    req.tag = tag;
    req.requester = app_->measurement();
    req.entry.challenge = Bytes{1, 2, 3, 4};
    req.entry.wrapped_key = Bytes(16, 0x42);
    req.entry.result_ct = Bytes(48, 0x99);
    const Message m = call(req);
    const auto* resp = std::get_if<PutResponse>(&m);
    EXPECT_NE(resp, nullptr);
    return resp != nullptr ? resp->status : PutStatus::kRejected;
  }

  bool acked(PutStatus s) {
    return s == PutStatus::kStored || s == PutStatus::kAlreadyPresent;
  }

  bool get_found(const Tag& tag) {
    GetRequest req;
    req.tag = tag;
    req.requester = app_->measurement();
    const Message m = call(req);
    const auto* resp = std::get_if<GetResponse>(&m);
    EXPECT_NE(resp, nullptr);
    return resp != nullptr && resp->found;
  }

  /// Nodes the ring assigns `tag` (first replicas+1 of the order).
  std::vector<std::size_t> owners(const Tag& tag) {
    auto order = transport_->preference_order(tag);
    order.resize(std::min(order.size(), transport_->config().replicas + 1));
    return order;
  }

  sgx::Platform platform_;
  std::optional<store::InprocCluster> cluster_;
  std::unique_ptr<sgx::Enclave> app_;
  std::shared_ptr<ClusterTransport> transport_;
};

std::atomic<int> g_rank_violations{0};
void count_rank_violation(LockRank, LockRank) { g_rank_violations.fetch_add(1); }

// Regression: constructing or retiring a node's ResultStore registers and
// deregisters telemetry collectors (Registry::mu_, rank 450); doing either
// under Node::mu (rank 530) inverted the lock order. The cluster ctor now
// builds stores before taking the node lock, and restart() displaces the
// dead store into a local retired before releasing it.
TEST_F(ClusterTest, NodeLifecycleKeepsLockOrder) {
  if (!lock_rank_check_enabled()) {
    GTEST_SKIP() << "built without SPEED_LOCK_RANK_CHECK";
  }
  g_rank_violations.store(0);
  RankViolationHandler prev = set_rank_violation_handler(&count_rank_violation);
  build(3, 1);
  cluster_->kill(0);
  EXPECT_TRUE(cluster_->restart(0));
  set_rank_violation_handler(prev);
  EXPECT_EQ(g_rank_violations.load(), 0);
}

TEST_F(ClusterTest, PutPlacesReplicaOnEveryRingOwner) {
  build(3, 1);
  SPEED_SEEDED_RNG(rng, 0xC1B51EADull);
  constexpr int kTags = 40;
  for (int i = 0; i < kTags; ++i) {
    const Tag t = random_tag(rng);
    ASSERT_EQ(put(t), PutStatus::kStored);
    // Every ring owner holds a copy the moment the PUT is acknowledged.
    for (const std::size_t node : owners(t)) {
      GetRequest g;
      g.tag = t;
      g.requester = app_->measurement();
      const Message m = serialize::decode_message(
          cluster_->store(node).handle(serialize::encode_message(Message(g))));
      const auto* resp = std::get_if<GetResponse>(&m);
      ASSERT_NE(resp, nullptr);
      EXPECT_TRUE(resp->found) << "owner " << node << " missing acked entry";
    }
  }
  std::uint64_t total = 0;
  for (std::size_t n = 0; n < 3; ++n) {
    const auto entries = cluster_->store(n).stats().entries;
    EXPECT_GT(entries, 0u) << "rendezvous placement left node " << n << " empty";
    total += entries;
  }
  // r=1: every tag stored on exactly two nodes.
  EXPECT_EQ(total, 2u * kTags);
}

TEST_F(ClusterTest, GetFailsOverWhenAnyNodeDies) {
  build(3, 1);
  SPEED_SEEDED_RNG(rng, 0xFA110123ull);
  std::vector<Tag> tags;
  for (int i = 0; i < 40; ++i) {
    tags.push_back(random_tag(rng));
    ASSERT_EQ(put(tags.back()), PutStatus::kStored);
  }
  // Killing any single node must leave every acked entry readable: each has
  // a copy on two nodes, and the GET walk extends past the dead one.
  for (std::size_t victim = 0; victim < 3; ++victim) {
    cluster_->kill(victim);
    for (const Tag& t : tags) {
      EXPECT_TRUE(get_found(t)) << "lost entry with node " << victim << " down";
    }
    cluster_->partition(victim, false);
    ASSERT_TRUE(cluster_->restart(victim));
    cluster_->rejoin(victim);
  }
  EXPECT_GT(transport_->stats().failovers, 0u);
}

TEST_F(ClusterTest, PutIsAckedOnlyAtFullQuorum) {
  build(3, 1);
  SPEED_SEEDED_RNG(rng, 0x9040Full);
  // Two nodes down: only one copy can be placed, below the r+1 = 2 quorum.
  // The PUT must NOT be acknowledged — the zero-acked-loss invariant.
  cluster_->kill(0);
  cluster_->kill(1);
  const Tag t = random_tag(rng);
  const PutStatus s = put(t);
  EXPECT_FALSE(acked(s));
  EXPECT_GT(transport_->stats().partial_puts, 0u);

  // All nodes down: not even a definitive rejection is possible — the walk
  // throws StoreUnavailableError, the runtime's degrade-to-compute signal.
  cluster_->kill(2);
  PutRequest req;
  req.tag = random_tag(rng);
  req.requester = app_->measurement();
  req.entry.result_ct = Bytes(8, 1);
  EXPECT_THROW(call(req), net::StoreUnavailableError);
  GetRequest get;
  get.tag = t;
  get.requester = app_->measurement();
  EXPECT_THROW(call(get), net::StoreUnavailableError);
  EXPECT_GT(transport_->stats().unavailable, 0u);
}

TEST_F(ClusterTest, ReadRepairRefillsARestartedOwner) {
  net::ClusterConfig nc;
  nc.probe_interval_ms = 0;  // walk always re-attempts down-marked nodes, so
                             // the restarted owner's definitive miss is seen
  build(3, 1, nc);
  SPEED_SEEDED_RNG(rng, 0x4EADull);
  // PUTs while node 0 is down place sloppily on the two live nodes.
  cluster_->kill(0);
  std::vector<Tag> tags;
  for (int i = 0; i < 30; ++i) {
    tags.push_back(random_tag(rng));
    ASSERT_TRUE(acked(put(tags.back())));
  }
  // Node 0 returns EMPTY (no rejoin): for tags it ring-owns, it now misses
  // definitively while a replica still hits — the read-repair trigger.
  ASSERT_TRUE(cluster_->restart(0));
  for (const Tag& t : tags) {
    EXPECT_TRUE(get_found(t));
  }
  EXPECT_GT(transport_->stats().read_repairs, 0u);
  // The repaired copies landed on node 0 as ordinary quota-charged PUTs.
  EXPECT_GT(cluster_->store(0).stats().entries, 0u);
}

TEST_F(ClusterTest, HeartbeatProbesDriveHealthStates) {
  net::ClusterConfig nc;
  nc.probe_interval_ms = 0;  // probes always admitted
  nc.down_threshold = 2;
  build(3, 1, nc);
  EXPECT_EQ(transport_->probe_all(), 3u);
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(transport_->node_health(n), ClusterTransport::NodeHealth::kUp);
  }
  cluster_->kill(1);
  EXPECT_FALSE(transport_->probe(1).has_value());  // kUp -> suspect
  EXPECT_FALSE(transport_->probe(1).has_value());  // suspect -> down
  EXPECT_EQ(transport_->node_health(1), ClusterTransport::NodeHealth::kDown);
  EXPECT_EQ(transport_->probe_all(), 2u);

  ASSERT_TRUE(cluster_->restart(1));
  const auto beat = transport_->probe(1);
  ASSERT_TRUE(beat.has_value());
  EXPECT_EQ(transport_->node_health(1), ClusterTransport::NodeHealth::kUp);
}

TEST_F(ClusterTest, HeartbeatReportsEntriesAndEpoch) {
  build(3, 1);
  SPEED_SEEDED_RNG(rng, 0xBEA7ull);
  for (int i = 0; i < 10; ++i) ASSERT_EQ(put(random_tag(rng)), PutStatus::kStored);
  cluster_->replicator().broadcast_membership({true, true, true});
  std::uint64_t entries = 0;
  for (std::size_t n = 0; n < 3; ++n) {
    const auto beat = transport_->probe(n);
    ASSERT_TRUE(beat.has_value());
    entries += beat->entries;
    EXPECT_EQ(beat->cluster_epoch, 1u);
    EXPECT_FALSE(beat->degraded);
  }
  EXPECT_EQ(entries, 20u);
}

TEST_F(ClusterTest, MembershipEpochIsMonotonic) {
  build(3, 1);
  auto& repl = cluster_->replicator();
  EXPECT_EQ(repl.broadcast_membership({true, true, true}), 3u);
  EXPECT_EQ(repl.epoch(), 1u);
  EXPECT_EQ(repl.broadcast_membership({true, false, true}), 2u);
  EXPECT_EQ(repl.epoch(), 2u);
  EXPECT_EQ(cluster_->store(0).cluster_view().epoch, 2u);

  // A stale update (epoch 1 after 2) must be ignored, not applied.
  serialize::MembershipUpdate stale;
  stale.epoch = 1;
  stale.members = {{"store-0", serialize::MemberStatus::kUp}};
  const Bytes framed = serialize::encode_message(Message(stale));
  const Message m = serialize::decode_message(cluster_->store(0).handle(framed));
  const auto* ack = std::get_if<serialize::MembershipAck>(&m);
  ASSERT_NE(ack, nullptr);
  EXPECT_FALSE(ack->applied);
  EXPECT_EQ(ack->epoch, 2u);
  EXPECT_EQ(cluster_->store(0).cluster_view().members.size(), 3u);
}

TEST_F(ClusterTest, BulkPullResumesAcrossPagesAndKeepsRingShare) {
  store::ReplicationConfig repl;
  repl.pull_page = 7;  // force several pages over 40 entries
  build(3, 1, net::ClusterConfig{}, repl);
  SPEED_SEEDED_RNG(rng, 0x9A6E5ull);
  std::vector<Tag> tags;
  for (int i = 0; i < 40; ++i) {
    tags.push_back(random_tag(rng));
    ASSERT_EQ(put(tags.back()), PutStatus::kStored);
  }
  std::size_t node2_share = 0;
  for (const Tag& t : tags) {
    const auto o = owners(t);
    if (std::find(o.begin(), o.end(), std::size_t{2}) != o.end()) ++node2_share;
  }
  ASSERT_GT(node2_share, 0u);

  cluster_->kill(2);
  ASSERT_TRUE(cluster_->restart(2));
  EXPECT_EQ(cluster_->store(2).stats().entries, 0u);
  const std::size_t merged = cluster_->rejoin(2);
  // The rejoining node pulled exactly its ring share — every tag it owns,
  // none it doesn't — across multiple resumable pages.
  EXPECT_EQ(merged, node2_share);
  EXPECT_EQ(cluster_->store(2).stats().entries, node2_share);
}

TEST_F(ClusterTest, AntiEntropyPushRestoresReplicationAfterWipe) {
  build(3, 1);
  SPEED_SEEDED_RNG(rng, 0xA47E0ull);
  std::vector<Tag> tags;
  for (int i = 0; i < 30; ++i) {
    tags.push_back(random_tag(rng));
    ASSERT_EQ(put(tags.back()), PutStatus::kStored);
    // Heat the entries so the push round ranks them.
    get_found(tags.back());
  }
  cluster_->kill(1);
  ASSERT_TRUE(cluster_->restart(1));
  // Hot-entry push from the surviving nodes re-fills node 1's share.
  cluster_->anti_entropy_round();
  EXPECT_GT(cluster_->store(1).stats().entries, 0u);
  EXPECT_GT(cluster_->replicator().stats().pushed_entries, 0u);
  for (const Tag& t : tags) EXPECT_TRUE(get_found(t));
}

TEST_F(ClusterTest, InfraMessagesRejectedOnApplicationSessions) {
  // An application credential must not reach the infra plane: PUSH merges
  // bypass quota accounting, PULL walks the whole dictionary.
  sgx::Platform platform(fast_model());
  store::ResultStore store(platform);
  auto app = platform.create_enclave("rogue-app");
  auto conn = store::connect_app(store, *app);
  net::SecureChannel client(std::move(conn.session_key), /*is_initiator=*/true);

  const auto send = [&](const Message& m) {
    const Bytes frame = client.wrap(serialize::encode_message(m));
    return conn.transport->round_trip(frame);
  };
  EXPECT_THROW(send(Message(serialize::SyncRequest{4})), ProtocolError);

  // The same messages are served on the infra plane (host-framed handle()).
  const Bytes framed =
      serialize::encode_message(Message(serialize::PullRequest{}));
  const Message m = serialize::decode_message(store.handle(framed));
  EXPECT_NE(std::get_if<serialize::PullResponse>(&m), nullptr);
}

/// Transport decorator that delays every round trip (hedging trigger).
class SlowTransport : public net::Transport {
 public:
  SlowTransport(std::unique_ptr<net::Transport> inner, std::uint64_t delay_ms)
      : inner_(std::move(inner)), delay_ms_(delay_ms) {}
  Bytes round_trip(ByteView request) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return inner_->round_trip(request);
  }
  bool recover() override { return inner_->recover(); }
  void set_rekey_callback(net::Transport::RekeyCallback cb) override {
    inner_->set_rekey_callback(std::move(cb));
  }

 private:
  std::unique_ptr<net::Transport> inner_;
  std::uint64_t delay_ms_;
};

TEST_F(ClusterTest, HedgedGetServesFromReplicaWhilePrimaryIsSlow) {
  net::ClusterConfig nc;
  nc.hedge_delay_ms = 2;
  build(3, 1, nc);
  SPEED_SEEDED_RNG(rng, 0x4ED6Eull);
  // Store entries first over the fast links.
  std::vector<Tag> tags;
  for (int i = 0; i < 12; ++i) {
    tags.push_back(random_tag(rng));
    ASSERT_EQ(put(tags.back()), PutStatus::kStored);
  }
  // Rebuild the client with node 0 behind a 50ms-slow link; entries whose
  // primary is node 0 must be served by the replica before the slow leg
  // finishes.
  auto dials = cluster_->dial_list(*app_);
  auto inner = dials[0].dial;
  dials[0].dial = [inner]() {
    auto conn = inner();
    conn.transport =
        std::make_unique<SlowTransport>(std::move(conn.transport), 50);
    return conn;
  };
  net::ClusterConfig hedged = transport_->config();
  auto client = std::make_shared<ClusterTransport>(*app_, std::move(dials),
                                                   hedged);
  std::size_t primary_on_0 = 0;
  for (const Tag& t : tags) {
    if (client->preference_order(t)[0] != 0) continue;
    ++primary_on_0;
    GetRequest req;
    req.tag = t;
    req.requester = app_->measurement();
    const Message m = app_->ecall([&] { return client->round_trip_message(req); });
    const auto* resp = std::get_if<GetResponse>(&m);
    ASSERT_NE(resp, nullptr);
    // The replica leg answered; the slow primary leg is joined afterwards
    // without overwriting the served result.
    EXPECT_TRUE(resp->found);
  }
  ASSERT_GT(primary_on_0, 0u);
  EXPECT_EQ(client->stats().hedged_gets, primary_on_0);
}

// Regression for the two-tier metadata refactor (PROTOCOL.md §11): with
// resident_meta_bytes = 0 every entry's full record is cold — only the
// 32-byte slot stays in EPC — so bulk pulls, anti-entropy pushes, and GETs
// must all fault records back in from the sealed spill tier. A cursor walk
// that only visited decoded-resident records would silently under-replicate.
TEST_F(ClusterTest, ColdSpilledMetadataReplicatesThroughPullAndPush) {
  store::ReplicationConfig repl;
  repl.pull_page = 7;  // several resumable pages over 40 entries
  store::StoreConfig sc;
  sc.resident_meta_bytes = 0;  // no decoded-record cache: everything is cold
  build(3, 1, net::ClusterConfig{}, repl, sc);
  SPEED_SEEDED_RNG(rng, 0xC01DCA7ull);
  std::vector<Tag> tags;
  for (int i = 0; i < 40; ++i) {
    tags.push_back(random_tag(rng));
    ASSERT_EQ(put(tags.back()), PutStatus::kStored);
    get_found(tags.back());  // heat entries for the anti-entropy ranking
  }
  // Prove the entries really are cold: every PUT spilled its record and the
  // GETs above had to fault them back in.
  std::uint64_t spills = 0;
  std::uint64_t fault_ins = 0;
  for (std::size_t n = 0; n < 3; ++n) {
    spills += cluster_->store(n).stats().meta_spills;
    fault_ins += cluster_->store(n).stats().meta_fault_ins;
  }
  EXPECT_EQ(spills, 2u * tags.size());  // r=1: two replicas per tag
  EXPECT_GT(fault_ins, 0u);

  // Bulk pull: a wiped node's rejoin must recover its exact ring share even
  // though the donors hold every record spilled.
  std::size_t node2_share = 0;
  for (const Tag& t : tags) {
    const auto o = owners(t);
    if (std::find(o.begin(), o.end(), std::size_t{2}) != o.end()) ++node2_share;
  }
  ASSERT_GT(node2_share, 0u);
  cluster_->kill(2);
  ASSERT_TRUE(cluster_->restart(2));
  EXPECT_EQ(cluster_->rejoin(2), node2_share);
  EXPECT_EQ(cluster_->store(2).stats().entries, node2_share);

  // Anti-entropy push: cold entries still rank and replicate.
  cluster_->kill(1);
  ASSERT_TRUE(cluster_->restart(1));
  cluster_->anti_entropy_round();
  EXPECT_GT(cluster_->replicator().stats().pushed_entries, 0u);
  for (const Tag& t : tags) {
    EXPECT_TRUE(get_found(t)) << "cold entry lost through replication";
  }
}

TEST_F(ClusterTest, RuntimeUsesClusterForDedup) {
  build(3, 1);
  runtime::RuntimeConfig rc;
  rc.local_cache = false;  // force every repeat through the cluster
  rc.async_put = false;    // deterministic store state after each call
  runtime::DedupRuntime rt(*app_, transport_, rc);
  rt.libraries().register_library("libtest", "1.0", as_bytes("code"));
  const auto fn = rt.resolve({"libtest", "1.0", "Bytes f(Bytes)"});

  int computes = 0;
  const auto compute = [&]() -> Bytes {
    ++computes;
    return Bytes{9, 9, 9};
  };
  const Bytes input{1, 2, 3};
  const auto first = rt.execute(fn, input, compute);
  EXPECT_FALSE(first.deduplicated);
  const auto second = rt.execute(fn, input, compute);
  EXPECT_TRUE(second.deduplicated);
  EXPECT_EQ(second.result, first.result);
  EXPECT_EQ(computes, 1);

  // A second application on the same cluster deduplicates cross-app.
  auto app2 = platform_.create_enclave("cluster-app-2");
  runtime::DedupRuntime rt2(*app2, cluster_->connect(*app2), rc);
  rt2.libraries().register_library("libtest", "1.0", as_bytes("code"));
  const auto fn2 = rt2.resolve({"libtest", "1.0", "Bytes f(Bytes)"});
  int computes2 = 0;
  const auto outcome = rt2.execute(fn2, input, [&]() -> Bytes {
    ++computes2;
    return Bytes{9, 9, 9};
  });
  EXPECT_TRUE(outcome.deduplicated);
  EXPECT_EQ(computes2, 0);
}

}  // namespace
}  // namespace speed
