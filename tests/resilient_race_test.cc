// ResilientTransport concurrency + breaker-jitter tests.
//
// The cluster walk (net/cluster.h) drives one ResilientTransport per node
// from many application threads at once, so recover() racing round_trip()
// racing the breaker's open -> half-open transition must be data-race free
// (this suite is part of the TSan chaos job) and must admit exactly one
// coherent outcome: after the store comes back, some recover() succeeds,
// the breaker closes, and every round trip works again.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "net/resilient.h"
#include "test_seed.h"

namespace speed {
namespace {

using net::ResilienceConfig;
using net::ResilientTransport;

/// Inner transport controlled by a shared up/down flag.
class SwitchedTransport : public net::Transport {
 public:
  explicit SwitchedTransport(std::shared_ptr<std::atomic<bool>> up)
      : up_(std::move(up)) {}
  Bytes round_trip(ByteView request) override {
    if (!up_->load(std::memory_order_acquire)) {
      throw net::StoreUnavailableError("switched off");
    }
    return Bytes(request.begin(), request.end());
  }

 private:
  std::shared_ptr<std::atomic<bool>> up_;
};

struct Rig {
  explicit Rig(ResilienceConfig rc)
      : up(std::make_shared<std::atomic<bool>>(true)),
        transport(std::make_unique<SwitchedTransport>(up),
                  [this]() -> ResilientTransport::Connection {
                    if (!up->load(std::memory_order_acquire)) {
                      throw net::StoreUnavailableError("dial refused");
                    }
                    redials.fetch_add(1, std::memory_order_relaxed);
                    ResilientTransport::Connection c;
                    c.transport = std::make_unique<SwitchedTransport>(up);
                    c.session_key = secret::Buffer::absorb(Bytes(32, 0x5a));
                    return c;
                  },
                  rc) {}

  std::shared_ptr<std::atomic<bool>> up;
  std::atomic<int> redials{0};
  ResilientTransport transport;
};

ResilienceConfig race_config() {
  ResilienceConfig rc;
  rc.reconnect_attempts = 1;
  rc.backoff_initial_ms = 0;
  rc.backoff_max_ms = 1;
  rc.breaker_threshold = 3;
  rc.breaker_cooldown_ms = 2;
  rc.breaker_cooldown_jitter = 0.5;
  return rc;
}

TEST(ResilientRaceTest, BreakerCooldownIsJitteredPerOpen) {
  ResilienceConfig rc = race_config();
  rc.breaker_cooldown_ms = 1000;  // wide span so the draws are observable
  rc.breaker_cooldown_jitter = 0.4;
  rc.breaker_threshold = 1;
  Rig rig(rc);
  const Bytes frame{1};

  std::set<std::uint64_t> draws;
  rig.up->store(false);
  EXPECT_THROW(rig.transport.round_trip(frame), net::StoreUnavailableError);
  ASSERT_EQ(rig.transport.breaker_state(),
            ResilientTransport::BreakerState::kOpen);
  const std::uint64_t first = rig.transport.current_cooldown_ms();
  // Every draw stays inside the +/- jitter window around the base.
  EXPECT_GE(first, 600u);
  EXPECT_LE(first, 1400u);
  draws.insert(first);
  // A fleet of clients tripping on the same outage: each transport seeds its
  // own jitter stream, so their half-open probes spread across the window
  // instead of thundering the recovering store in lockstep.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ResilienceConfig seeded = rc;
    seeded.jitter_seed = seed;
    Rig r(seeded);
    r.up->store(false);
    EXPECT_THROW(r.transport.round_trip(frame), net::StoreUnavailableError);
    const std::uint64_t cooldown = r.transport.current_cooldown_ms();
    EXPECT_GE(cooldown, 600u);
    EXPECT_LE(cooldown, 1400u);
    draws.insert(cooldown);
  }
  // An unjittered breaker would produce a single value; the anti-herd
  // jitter must spread the fleet.
  EXPECT_GE(draws.size(), 4u);

  // Jitter disabled: the cooldown is exactly the configured base.
  ResilienceConfig plain = rc;
  plain.breaker_cooldown_jitter = 0.0;
  Rig p(plain);
  p.up->store(false);
  EXPECT_THROW(p.transport.round_trip(frame), net::StoreUnavailableError);
  EXPECT_EQ(p.transport.current_cooldown_ms(), 1000u);
}

TEST(ResilientRaceTest, ConcurrentRecoverRacesHalfOpenSafely) {
  SPEED_SEEDED_RNG(rng, 0x4ACE'0001ull);
  Rig rig(race_config());
  const Bytes frame{2};

  // Trip the breaker: threshold consecutive failures while the store is
  // down (recover() fails too, because the dial is refused).
  rig.up->store(false);
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(rig.transport.round_trip(frame), net::StoreUnavailableError);
  }
  ASSERT_EQ(rig.transport.breaker_state(),
            ResilientTransport::BreakerState::kOpen);

  // Store comes back; many threads immediately race recover() against the
  // open -> half-open transition and against round_trip() traffic. Exactly
  // which thread wins the half-open probe is timing-dependent; the
  // invariants are: no data race (TSan), at least one recover succeeds,
  // and the breaker ends closed with traffic flowing.
  rig.up->store(true);
  std::atomic<int> recover_ok{0};
  std::atomic<int> trips_ok{0};
  std::vector<std::uint64_t> delays;
  for (int t = 0; t < 8; ++t) delays.push_back(rng() % 4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      std::this_thread::sleep_for(std::chrono::milliseconds(delays[t]));
      for (int i = 0; i < 50; ++i) {
        if ((i + t) % 3 == 0) {
          if (rig.transport.recover()) {
            recover_ok.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          try {
            const Bytes out = rig.transport.round_trip(frame);
            EXPECT_EQ(out, frame);
            trips_ok.fetch_add(1, std::memory_order_relaxed);
          } catch (const net::StoreUnavailableError&) {
            // short-circuited by the not-yet-expired breaker: expected
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_GT(recover_ok.load(), 0);
  EXPECT_GT(trips_ok.load(), 0);
  EXPECT_GT(rig.redials.load(), 0);
  EXPECT_EQ(rig.transport.breaker_state(),
            ResilientTransport::BreakerState::kClosed);
  EXPECT_EQ(rig.transport.round_trip(frame), frame);
}

TEST(ResilientRaceTest, FlappingStoreUnderConcurrencyStaysCoherent) {
  SPEED_SEEDED_RNG(rng, 0x4ACE'0002ull);
  Rig rig(race_config());
  const Bytes frame{3};

  // Record one failure deterministically before the chaos starts: whether
  // any worker op lands inside a down window is scheduler-dependent (under
  // parallel ctest the chaos thread can be starved entirely), so the
  // failures>0 assertion below must not depend on it.
  rig.up->store(false);
  EXPECT_THROW(rig.transport.round_trip(frame), net::StoreUnavailableError);
  rig.up->store(true);

  // A chaos thread flaps the store on a seeded schedule while workers hammer
  // round_trip/recover. Nothing may crash, deadlock, or race; when the dust
  // settles with the store up, service must be restored.
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> flips;
  for (int i = 0; i < 40; ++i) flips.push_back(1 + rng() % 3);
  std::thread chaos([&] {
    for (const std::uint64_t ms : flips) {
      rig.up->store(!rig.up->load());
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      if (stop.load()) break;
    }
    rig.up->store(true);
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        try {
          if ((i + t) % 7 == 0) {
            rig.transport.recover();
          } else {
            rig.transport.round_trip(frame);
          }
        } catch (const net::StoreUnavailableError&) {
          // expected while flapped down / breaker open
        }
      }
    });
  }
  for (auto& th : workers) th.join();
  stop.store(true);
  chaos.join();

  // Store is up for good now: within a few recover/probe cycles the breaker
  // must close and stay closed.
  bool restored = false;
  for (int i = 0; i < 200 && !restored; ++i) {
    try {
      restored = rig.transport.round_trip(frame) == frame;
    } catch (const net::StoreUnavailableError&) {
      rig.transport.recover();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_TRUE(restored);
  const auto s = rig.transport.stats();
  EXPECT_GT(s.round_trips, 0u);
  EXPECT_GT(s.failures, 0u);
}

}  // namespace
}  // namespace speed
