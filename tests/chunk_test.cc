// Chunking layer: Gear CDC properties, ChunkPlan tag derivation, and the
// manifest codec. The boundary-invariance properties are what the whole
// streaming-dedup design rests on, so they are tested as randomized
// properties (seed via SPEED_TEST_SEED), not just examples.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "chunk/chunk_plan.h"
#include "chunk/chunker.h"
#include "chunk/manifest.h"
#include "common/error.h"
#include "common/rng.h"
#include "mle/tag.h"
#include "serialize/codec.h"
#include "test_seed.h"

namespace speed {
namespace {

using chunk::ChunkRef;
using chunk::Chunker;
using chunk::ChunkerConfig;

mle::FunctionIdentity test_identity(const std::string& sig = "bytes f(bytes)") {
  mle::FunctionIdentity fn;
  fn.descriptor = {"chunk-test-lib", "1.0", sig};
  return fn;
}

// ------------------------------------------------------------- chunker ----

TEST(ChunkerConfigTest, RejectsInvalidShapes) {
  EXPECT_THROW(Chunker({0, 8, 16}), std::invalid_argument);       // min = 0
  EXPECT_THROW(Chunker({16, 8, 64}), std::invalid_argument);      // min > avg
  EXPECT_THROW(Chunker({8, 64, 32}), std::invalid_argument);      // avg > max
  EXPECT_THROW(Chunker({8, 24, 64}), std::invalid_argument);      // avg !pow2
  EXPECT_NO_THROW(Chunker({8, 8, 8}));
  EXPECT_NO_THROW(Chunker({1, 1, 1}));
}

TEST(ChunkerTest, EmptyInputYieldsNoChunks) {
  EXPECT_TRUE(Chunker().split({}).empty());
}

TEST(ChunkerTest, SubMinimumInputYieldsOneChunk) {
  Xoshiro256 rng(1);
  const Bytes data = rng.bytes(Chunker().config().min_size - 1);
  const auto chunks = Chunker().split(data);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (ChunkRef{0, data.size()}));
}

TEST(ChunkerTest, ChunksTileTheInputWithinBounds) {
  SPEED_SEEDED_RNG(rng, 0xc0ffee01);
  const Chunker chunker;
  const auto& cfg = chunker.config();
  for (const std::size_t size :
       {std::size_t{1}, cfg.min_size, cfg.min_size + 1, cfg.max_size,
        cfg.max_size + 1, std::size_t{1} << 20}) {
    const Bytes data = rng.bytes(size);
    const auto chunks = chunker.split(data);
    ASSERT_FALSE(chunks.empty());
    std::size_t offset = 0;
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      EXPECT_EQ(chunks[i].offset, offset);
      EXPECT_LE(chunks[i].size, cfg.max_size);
      if (i + 1 < chunks.size()) EXPECT_GE(chunks[i].size, cfg.min_size);
      offset += chunks[i].size;
    }
    EXPECT_EQ(offset, data.size());
  }
}

TEST(ChunkerTest, BoundsHoldUnderRandomConfigsAndInputs) {
  SPEED_SEEDED_RNG(rng, 0xc0ffee02);
  for (int round = 0; round < 50; ++round) {
    ChunkerConfig cfg;
    cfg.avg_size = std::size_t{1} << (3 + rng.below(8));    // 8 .. 1024
    cfg.min_size = 1 + rng.below(cfg.avg_size);
    cfg.max_size = cfg.avg_size << rng.below(4);
    const Chunker chunker(cfg);
    const Bytes data = rng.bytes(rng.below(64 * 1024));
    std::size_t offset = 0;
    const auto chunks = chunker.split(data);
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      ASSERT_EQ(chunks[i].offset, offset);
      ASSERT_GT(chunks[i].size, 0u);
      ASSERT_LE(chunks[i].size, cfg.max_size);
      if (i + 1 < chunks.size()) ASSERT_GE(chunks[i].size, cfg.min_size);
      offset += chunks[i].size;
    }
    ASSERT_EQ(offset, data.size());
  }
}

TEST(ChunkerTest, SplitIsDeterministic) {
  Xoshiro256 rng(2);
  const Bytes data = rng.bytes(256 * 1024);
  EXPECT_EQ(Chunker().split(data), Chunker().split(data));
}

/// Bytes covered by the identical chunk tail shared by both splits.
std::size_t matched_tail_bytes(ByteView a, const std::vector<ChunkRef>& ca,
                               ByteView b, const std::vector<ChunkRef>& cb) {
  std::size_t matched = 0;
  auto ia = ca.rbegin();
  auto ib = cb.rbegin();
  while (ia != ca.rend() && ib != cb.rend() && ia->size == ib->size) {
    const ByteView wa = a.subspan(ia->offset, ia->size);
    const ByteView wb = b.subspan(ib->offset, ib->size);
    if (!std::equal(wa.begin(), wa.end(), wb.begin())) break;
    matched += ia->size;
    ++ia;
    ++ib;
  }
  return matched;
}

TEST(ChunkerTest, BoundariesResynchronizeAfterPrefixInsertion) {
  SPEED_SEEDED_RNG(rng, 0xc0ffee03);
  const Chunker chunker;
  const auto& cfg = chunker.config();
  const Bytes base = rng.bytes(512 * 1024);
  for (const std::size_t shift : {std::size_t{1}, std::size_t{17},
                                  cfg.min_size, cfg.avg_size + 3}) {
    Bytes shifted = rng.bytes(shift);
    shifted.insert(shifted.end(), base.begin(), base.end());
    const auto a = chunker.split(base);
    const auto b = chunker.split(shifted);
    // The insertion can perturb the chunk it lands in plus everything up to
    // the next natural boundary; after at most a few max-size chunks the
    // splits must walk in lockstep again. Require the overwhelming majority
    // of the input to re-align (4 * max_size slack out of 512 KiB).
    const std::size_t matched =
        matched_tail_bytes(base, a, ByteView(shifted), b);
    EXPECT_GE(matched, base.size() - 4 * cfg.max_size)
        << "shift=" << shift << " realigned only " << matched << " bytes";
  }
}

TEST(ChunkerTest, BoundariesResynchronizeAfterMidEdit) {
  SPEED_SEEDED_RNG(rng, 0xc0ffee04);
  const Chunker chunker;
  const auto& cfg = chunker.config();
  const Bytes base = rng.bytes(512 * 1024);
  Bytes edited = base;
  const Bytes patch = rng.bytes(100);
  edited.insert(edited.begin() + base.size() / 2, patch.begin(), patch.end());
  const std::size_t matched = matched_tail_bytes(
      base, chunker.split(base), ByteView(edited), chunker.split(edited));
  // Everything after the edit point must realign (minus resync slack).
  EXPECT_GE(matched, base.size() / 2 - 4 * cfg.max_size);
}

TEST(ChunkerTest, CutRateSurvivesLowEntropyInput) {
  // Low-symbol-diversity input (the Gear low-bits weakness): judging the
  // high bits of the rolling hash must keep the average chunk near target.
  Xoshiro256 rng(3);
  Bytes text;
  text.reserve(1 << 20);
  const std::string vocab = "the quick brown enclave dedups chunks ";
  while (text.size() < (1 << 20)) {
    const char c = vocab[rng.below(vocab.size())];
    text.insert(text.end(), 1 + rng.below(4), static_cast<std::uint8_t>(c));
  }
  const Chunker chunker;
  const auto chunks = chunker.split(text);
  const std::size_t avg = text.size() / chunks.size();
  const std::size_t target =
      chunker.config().min_size + chunker.config().avg_size;
  EXPECT_GT(avg, target / 3);
  EXPECT_LT(avg, target * 3);
}

// ----------------------------------------------------------- chunk plan ---

TEST(ChunkPlanTest, SingleChunkDegradesToWholeCall) {
  Xoshiro256 rng(4);
  const Bytes data = rng.bytes(100);  // far below min_size
  const auto fn = test_identity();
  const auto plan = chunk::ChunkPlan::build(fn, data, Chunker());
  EXPECT_TRUE(plan.whole_call());
  EXPECT_EQ(plan.chunk_count(), 1u);
  // The degraded plan's context/tag are byte-identical to the per-call path.
  EXPECT_EQ(plan.stream_tag(), mle::derive_tag(fn, data));
  EXPECT_EQ(plan.stream_context().tag(), mle::derive_tag(fn, data));
}

TEST(ChunkPlanTest, MultiChunkTagsMatchDirectDerivation) {
  SPEED_SEEDED_RNG(rng, 0xc0ffee05);
  const Bytes data = rng.bytes(128 * 1024);
  const auto fn = test_identity();
  const Chunker chunker;
  const auto plan = chunk::ChunkPlan::build(fn, data, chunker);
  ASSERT_FALSE(plan.whole_call());
  ASSERT_GT(plan.chunk_count(), 1u);
  for (std::size_t i = 0; i < plan.chunk_count(); ++i) {
    const mle::ComputationContext direct(fn, plan.chunk_bytes(i),
                                         mle::Domain::kChunk);
    EXPECT_EQ(plan.chunk_tag(i), direct.tag());
    EXPECT_EQ(plan.chunk_context(i).tag(), direct.tag());
  }
  const mle::ComputationContext stream(fn, data, mle::Domain::kStream);
  EXPECT_EQ(plan.stream_tag(), stream.tag());
}

TEST(ChunkPlanTest, DomainsAreDisjoint) {
  // A chunk whose bytes equal a whole input must not alias its call tag,
  // and the stream tag must differ from both.
  Xoshiro256 rng(5);
  const Bytes data = rng.bytes(4096);
  const auto fn = test_identity();
  const auto call = mle::ComputationContext(fn, data, mle::Domain::kCall).tag();
  const auto chnk = mle::ComputationContext(fn, data, mle::Domain::kChunk).tag();
  const auto strm = mle::ComputationContext(fn, data, mle::Domain::kStream).tag();
  EXPECT_NE(call, chnk);
  EXPECT_NE(call, strm);
  EXPECT_NE(chnk, strm);
}

TEST(ChunkPlanTest, SameContentSameTagAcrossPositionsAndBlobs) {
  // Chunk tags are content-addressed: the same chunk bytes give the same
  // tag regardless of which blob or offset they came from.
  const auto fn = test_identity();
  Xoshiro256 rng(6);
  const Bytes shared = rng.bytes(32 * 1024);
  Bytes a = rng.bytes(16 * 1024);
  a.insert(a.end(), shared.begin(), shared.end());
  Bytes b = rng.bytes(48 * 1024);
  b.insert(b.end(), shared.begin(), shared.end());
  const Chunker chunker;
  const auto pa = chunk::ChunkPlan::build(fn, a, chunker);
  const auto pb = chunk::ChunkPlan::build(fn, b, chunker);
  std::size_t common = 0;
  for (std::size_t i = 0; i < pa.chunk_count(); ++i) {
    for (std::size_t j = 0; j < pb.chunk_count(); ++j) {
      if (pa.chunk_tag(i) == pb.chunk_tag(j)) {
        ++common;
        const auto wa = pa.chunk_bytes(i);
        const auto wb = pb.chunk_bytes(j);
        ASSERT_TRUE(std::equal(wa.begin(), wa.end(), wb.begin(), wb.end()));
      }
    }
  }
  EXPECT_GT(common, 0u);  // the shared tail must produce shared tags
}

TEST(ChunkPlanTest, DistinctFunctionsNeverShareChunkTags) {
  Xoshiro256 rng(7);
  const Bytes data = rng.bytes(64 * 1024);
  const Chunker chunker;
  const auto pa = chunk::ChunkPlan::build(test_identity("bytes f(bytes)"),
                                          data, chunker);
  const auto pb = chunk::ChunkPlan::build(test_identity("bytes g(bytes)"),
                                          data, chunker);
  ASSERT_EQ(pa.chunk_count(), pb.chunk_count());  // same boundaries...
  for (std::size_t i = 0; i < pa.chunk_count(); ++i) {
    EXPECT_NE(pa.chunk_tag(i), pb.chunk_tag(i));  // ...different namespace
  }
}

// ------------------------------------------------------------- manifest ---

TEST(ManifestTest, RoundTripsRefAndInlineEntries) {
  chunk::Manifest m;
  m.total_bytes = 12345;
  chunk::ManifestEntry ref;
  ref.tag.fill(0xab);
  ref.size = 4096;
  ref.key = secret::Buffer::copy_of(as_bytes("0123456789abcdef"));
  m.entries.push_back(std::move(ref));
  chunk::ManifestEntry inl;
  inl.inlined = true;
  inl.inline_bytes = to_bytes("raw chunk payload");
  m.entries.push_back(std::move(inl));

  const Bytes wire = chunk::encode_manifest(m);
  const chunk::Manifest back = chunk::decode_manifest(wire);
  EXPECT_EQ(back.total_bytes, 12345u);
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_FALSE(back.entries[0].inlined);
  EXPECT_EQ(back.entries[0].tag, m.entries[0].tag);
  EXPECT_EQ(back.entries[0].size, 4096u);
  EXPECT_TRUE(ct_equal(back.entries[0].key, as_bytes("0123456789abcdef")));
  EXPECT_TRUE(back.entries[1].inlined);
  EXPECT_EQ(back.entries[1].inline_bytes, to_bytes("raw chunk payload"));
}

TEST(ManifestTest, RejectsMalformedInput) {
  chunk::Manifest m;
  m.total_bytes = 7;
  chunk::ManifestEntry inl;
  inl.inlined = true;
  inl.inline_bytes = to_bytes("payload");
  m.entries.push_back(std::move(inl));
  const Bytes wire = chunk::encode_manifest(m);

  EXPECT_THROW(chunk::decode_manifest({}), SerializationError);
  Bytes truncated(wire.begin(), wire.end() - 3);
  EXPECT_THROW(chunk::decode_manifest(truncated), SerializationError);
  Bytes bad_version = wire;
  bad_version[0] ^= 0xff;
  EXPECT_THROW(chunk::decode_manifest(bad_version), SerializationError);
  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_THROW(chunk::decode_manifest(trailing), SerializationError);
}

TEST(ManifestTest, RejectsAllocationBombCounts) {
  // A count field claiming more entries than the buffer could possibly hold
  // must be rejected before any allocation happens.
  serialize::Encoder enc;
  enc.u8(1);                     // version
  enc.u64(0);                    // total_bytes
  enc.u32(0xffffffffu);          // entry count: absurd
  EXPECT_THROW(chunk::decode_manifest(enc.take()), SerializationError);
}

}  // namespace
}  // namespace speed
