// Crypto substrate tests: NIST/RFC vectors for SHA-256, HMAC, AES, AES-GCM,
// cross-checks between the hardware and scalar GCM paths, and DRBG sanity.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/error.h"
#include "crypto/aes.h"
#include "crypto/drbg.h"
#include "crypto/gcm.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace speed::crypto {
namespace {

std::string sha256_hex(std::string_view msg) {
  return hex_encode(to_bytes(Sha256::digest(as_bytes(msg))));
}

// ---------------------------------------------------------------- SHA-256

TEST(Sha256Test, Fips180EmptyString) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Fips180Abc) {
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, Fips180TwoBlockMessage) {
  EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(as_bytes(chunk));
  EXPECT_EQ(hex_encode(to_bytes(h.finish())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  // Chop a message at every possible split point; digests must agree.
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, 0123456789, repeatedly "
      "and at length so that block boundaries are crossed.";
  const Sha256Digest expected = Sha256::digest(as_bytes(msg));
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(as_bytes(std::string_view(msg).substr(0, split)));
    h.update(as_bytes(std::string_view(msg).substr(split)));
    EXPECT_EQ(h.finish(), expected) << "split at " << split;
  }
}

TEST(Sha256Test, DigestPartsEqualsConcatenation) {
  const Bytes a = to_bytes("hello "), b = to_bytes("enclave "), c = to_bytes("world");
  EXPECT_EQ(Sha256::digest_parts({a, b, c}),
            Sha256::digest(concat(a, b, c)));
}

TEST(Sha256Test, ExactBlockBoundaryLengths) {
  // 55/56/63/64/65 bytes straddle the padding edge cases.
  for (std::size_t n : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(n, 'x');
    Sha256 h;
    for (char ch : msg) h.update(as_bytes(std::string_view(&ch, 1)));
    EXPECT_EQ(h.finish(), Sha256::digest(as_bytes(msg))) << "len " << n;
  }
}

// ------------------------------------------------------------ HMAC-SHA256

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto mac = HmacSha256::mac(key, as_bytes("Hi There"));
  EXPECT_EQ(hex_encode(to_bytes(mac)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const auto mac = HmacSha256::mac(as_bytes("Jefe"),
                                   as_bytes("what do ya want for nothing?"));
  EXPECT_EQ(hex_encode(to_bytes(mac)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const auto mac = HmacSha256::mac(
      key, as_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(hex_encode(to_bytes(mac)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, VerifyAcceptsAndRejects) {
  const Bytes key = to_bytes("some-key");
  const Bytes msg = to_bytes("some message");
  auto mac = HmacSha256::mac(key, msg);
  EXPECT_TRUE(HmacSha256::verify(key, msg, ByteView(mac.data(), mac.size())));
  mac[0] ^= 1;
  EXPECT_FALSE(HmacSha256::verify(key, msg, ByteView(mac.data(), mac.size())));
}

TEST(HmacTest, DeriveKeyIsLabelSeparated) {
  const Bytes key = to_bytes("master");
  const Bytes ctx = to_bytes("ctx");
  // Derived keys are secret-typed: operator== is deleted, so compare with
  // the constant-time helper.
  EXPECT_FALSE(ct_equal(derive_key(key, "seal", ctx),
                        derive_key(key, "report", ctx)));
  EXPECT_TRUE(ct_equal(derive_key(key, "seal", ctx),
                       derive_key(key, "seal", ctx)));
  EXPECT_EQ(derive_key(key, "seal", ctx, 40).size(), 40u);
}

// -------------------------------------------------------------------- AES

TEST(AesTest, Fips197Aes128Vector) {
  // FIPS 197 Appendix C.1.
  const Bytes key = hex_decode("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = hex_decode("00112233445566778899aabbccddeeff");
  const Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(hex_encode(ByteView(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(AesTest, Fips197Aes256Vector) {
  // FIPS 197 Appendix C.3.
  const Bytes key =
      hex_decode("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes pt = hex_decode("00112233445566778899aabbccddeeff");
  const Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(hex_encode(ByteView(ct, 16)), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(AesTest, RejectsBadKeySize) {
  const Bytes key(17, 0);
  EXPECT_THROW(Aes{key}, CryptoError);
}

// ---------------------------------------------------------------- AES-GCM

struct GcmVector {
  const char* name;
  const char* key;
  const char* iv;
  const char* aad;
  const char* pt;
  const char* ct;
  const char* tag;
};

// McGrew & Viega GCM spec test cases (the ones with 96-bit IVs).
const GcmVector kGcmVectors[] = {
    {"tc1_empty", "00000000000000000000000000000000", "000000000000000000000000",
     "", "", "", "58e2fccefa7e3061367f1d57a4e7455a"},
    {"tc2_oneblock", "00000000000000000000000000000000",
     "000000000000000000000000", "", "00000000000000000000000000000000",
     "0388dace60b6a392f328c2b971b2fe78", "ab6e47d42cec13bdf53a67b21257bddf"},
    {"tc3_fourblocks", "feffe9928665731c6d6a8f9467308308",
     "cafebabefacedbaddecaf888", "",
     "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a721c3c0c9"
     "5956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
     "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e21d514b"
     "25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
     "4d5c2af327cd64a62cf35abd2ba6fab4"},
    {"tc4_with_aad", "feffe9928665731c6d6a8f9467308308",
     "cafebabefacedbaddecaf888", "feedfacedeadbeeffeedfacedeadbeefabaddad2",
     "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a721c3c0c9"
     "5956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
     "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e21d514b"
     "25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
     "5bc94fbc3221a5db94fae95ae7121a47"},
    // AES-256 case (spec test case 14 variant).
    {"tc_aes256_empty",
     "0000000000000000000000000000000000000000000000000000000000000000",
     "000000000000000000000000", "", "", "",
     "530f8afbc74536b9a963b4f1c4cb738b"},
    {"tc_aes256_oneblock",
     "0000000000000000000000000000000000000000000000000000000000000000",
     "000000000000000000000000", "", "00000000000000000000000000000000",
     "cea7403d4d606b6e074ec5d3baf39d18", "d0d1c8a799996bf0265b98b5d48ab919"},
};

class GcmVectorTest : public ::testing::TestWithParam<GcmVector> {};

TEST_P(GcmVectorTest, SealMatchesVector) {
  const auto& v = GetParam();
  const AesGcm gcm(hex_decode(v.key));
  const Bytes sealed =
      gcm.seal(hex_decode(v.iv), hex_decode(v.aad), hex_decode(v.pt));
  const std::string expected = std::string(v.ct) + v.tag;
  EXPECT_EQ(hex_encode(sealed), expected);
}

TEST_P(GcmVectorTest, OpenRoundTrips) {
  const auto& v = GetParam();
  const AesGcm gcm(hex_decode(v.key));
  const Bytes sealed = hex_decode(std::string(v.ct) + v.tag);
  const auto opened = gcm.open(hex_decode(v.iv), hex_decode(v.aad), sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, hex_decode(v.pt));
}

TEST_P(GcmVectorTest, TamperedCiphertextFailsAuth) {
  const auto& v = GetParam();
  const AesGcm gcm(hex_decode(v.key));
  Bytes sealed = hex_decode(std::string(v.ct) + v.tag);
  sealed[sealed.size() / 2] ^= 0x01;
  EXPECT_FALSE(gcm.open(hex_decode(v.iv), hex_decode(v.aad), sealed).has_value());
}

INSTANTIATE_TEST_SUITE_P(McGrewViega, GcmVectorTest,
                         ::testing::ValuesIn(kGcmVectors),
                         [](const auto& info) { return info.param.name; });

TEST(GcmTest, HwAndScalarPathsAgree) {
  if (!hw::gcm128_available()) GTEST_SKIP() << "no AES-NI on this machine";
  Drbg rng(to_bytes("gcm-crosscheck"));
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 63u, 64u, 100u, 1000u, 65536u}) {
    const Bytes key = rng.bytes(16);
    const Bytes iv = rng.bytes(12);
    const Bytes aad = rng.bytes(len % 37);
    const Bytes pt = rng.bytes(len);

    std::uint8_t hw_tag[16];
    Bytes hw_ct(len);
    hw::gcm128_encrypt(key.data(), iv.data(), aad, pt, hw_ct.data(), hw_tag);

    // The portable implementation must produce byte-identical output.
    const AesGcm portable(key, AesGcm::Impl::kPortable);
    Bytes sealed = portable.seal(iv, aad, pt);
    ASSERT_EQ(sealed.size(), len + 16);
    EXPECT_EQ(Bytes(sealed.begin(), sealed.begin() + static_cast<long>(len)),
              hw_ct);
    EXPECT_TRUE(ct_equal(ByteView(sealed).last(16), ByteView(hw_tag, 16)));

    // And each side must decrypt the other's ciphertext.
    Bytes recovered(len);
    ASSERT_TRUE(hw::gcm128_decrypt(key.data(), iv.data(), aad, hw_ct, hw_tag,
                                   recovered.data()));
    EXPECT_EQ(recovered, pt);
    const auto opened = portable.open(iv, aad, sealed);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, pt);
  }
}

TEST(GcmTest, EnvelopeHelpersRoundTrip) {
  Drbg rng(to_bytes("envelope"));
  const Bytes key = rng.bytes(16);
  const Bytes aad = to_bytes("associated");
  const Bytes pt = rng.bytes(777);
  const Bytes env = gcm_encrypt(key, aad, pt, rng);
  EXPECT_EQ(env.size(), gcm_envelope_size(pt.size()));
  const auto out = gcm_decrypt(key, aad, env);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, pt);
}

TEST(GcmTest, EnvelopeWrongKeyFails) {
  Drbg rng(to_bytes("envelope2"));
  const Bytes key = rng.bytes(16);
  Bytes key2 = key;
  key2[0] ^= 1;
  const Bytes env = gcm_encrypt(key, {}, to_bytes("secret"), rng);
  EXPECT_FALSE(gcm_decrypt(key2, {}, env).has_value());
}

TEST(GcmTest, EnvelopeWrongAadFails) {
  Drbg rng(to_bytes("envelope3"));
  const Bytes key = rng.bytes(16);
  const Bytes env = gcm_encrypt(key, as_bytes("aad-a"), to_bytes("secret"), rng);
  EXPECT_FALSE(gcm_decrypt(key, as_bytes("aad-b"), env).has_value());
}

TEST(GcmTest, TruncatedEnvelopeFailsGracefully) {
  Drbg rng(to_bytes("envelope4"));
  const Bytes key = rng.bytes(16);
  const Bytes env = gcm_encrypt(key, {}, to_bytes("x"), rng);
  for (std::size_t cut = 0; cut < kGcmIvSize + kGcmTagSize; ++cut) {
    EXPECT_FALSE(gcm_decrypt(key, {}, ByteView(env).first(cut)).has_value());
  }
}

// ------------------------------------------------------------------- DRBG

TEST(DrbgTest, DeterministicWithSameSeed) {
  Drbg a(to_bytes("seed"));
  Drbg b(to_bytes("seed"));
  EXPECT_EQ(a.bytes(1000), b.bytes(1000));
}

TEST(DrbgTest, DifferentSeedsDiffer) {
  Drbg a(to_bytes("seed-a"));
  Drbg b(to_bytes("seed-b"));
  EXPECT_NE(a.bytes(64), b.bytes(64));
}

TEST(DrbgTest, StreamIsStateful) {
  Drbg a(to_bytes("seed"));
  const Bytes first = a.bytes(32);
  const Bytes second = a.bytes(32);
  EXPECT_NE(first, second);
}

TEST(DrbgTest, OutputLooksBalanced) {
  // Crude sanity: bit frequency of 64KB should be near 50%.
  Drbg a(to_bytes("balance"));
  const Bytes data = a.bytes(64 * 1024);
  std::size_t ones = 0;
  for (std::uint8_t b : data) ones += static_cast<std::size_t>(__builtin_popcount(b));
  const double frac = static_cast<double>(ones) / (data.size() * 8);
  EXPECT_GT(frac, 0.49);
  EXPECT_LT(frac, 0.51);
}

TEST(DrbgTest, SystemBytesProducesRequestedLength) {
  EXPECT_EQ(Drbg::system_bytes(0).size(), 0u);
  EXPECT_EQ(Drbg::system_bytes(17).size(), 17u);
  EXPECT_NE(Drbg::system_bytes(16), Drbg::system_bytes(16));
}

}  // namespace
}  // namespace speed::crypto
