// Telemetry subsystem tests: histogram bucketing and exact merge, registry
// collection/merging, Prometheus/JSON rendering, the redaction boundary
// (nothing tag/key/input-shaped may appear in an exported label), per-call
// trace spans through the runtime pipeline, and the admin HTTP endpoint.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "runtime/speed.h"
#include "telemetry/admin_server.h"
#include "telemetry/exposition.h"
#include "telemetry/label.h"
#include "telemetry/metrics.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace speed {
namespace {

using telemetry::CallOutcome;
using telemetry::Counter;
using telemetry::Family;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::HistogramSnapshot;
using telemetry::LabelKey;
using telemetry::LabelValue;
using telemetry::MetricType;
using telemetry::Registry;
using telemetry::Stage;
using telemetry::TraceRing;
using telemetry::TraceSpan;

// ------------------------------------------------------------- histogram

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < Histogram::kSub; ++v) h.record(v);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, Histogram::kSub);
  for (std::uint64_t v = 0; v < Histogram::kSub; ++v) {
    EXPECT_EQ(s.buckets[v], 1u) << "value " << v << " maps to its own bucket";
    EXPECT_EQ(Histogram::bucket_upper_bound(v), v);
  }
}

TEST(HistogramTest, BucketBoundsContainTheirValues) {
  // Every recorded value must land in a bucket whose upper bound is >= the
  // value and whose relative error is bounded by 1/kSub.
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng() >> (rng() % 40);  // span many magnitudes
    const std::size_t idx = Histogram::bucket_index(v);
    const std::uint64_t ub = Histogram::bucket_upper_bound(idx);
    if (idx < Histogram::kBuckets - 1) {
      ASSERT_GE(ub, v);
      ASSERT_LE(static_cast<double>(ub - v),
                static_cast<double>(v) / Histogram::kSub + 1.0)
          << "relative error bound at v=" << v;
    }
    if (idx > 0) {
      ASSERT_LT(Histogram::bucket_upper_bound(idx - 1), v == 0 ? 1 : v)
          << "previous bucket must end below v=" << v;
    }
  }
}

TEST(HistogramTest, QuantilesAreOrderedAndClamped) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v * 1000);
  const auto s = h.snapshot();
  const auto p50 = s.quantile(0.50);
  const auto p95 = s.quantile(0.95);
  const auto p99 = s.quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, s.max);
  // p50 of a uniform 1k..1000k ns stream is ~500k ns, within bucket error.
  EXPECT_NEAR(static_cast<double>(p50), 500'000.0, 500'000.0 / 16 + 1000);
  EXPECT_EQ(s.max, 1'000'000u);
  EXPECT_EQ(HistogramSnapshot{}.quantile(0.5), 0u) << "empty histogram";
}

TEST(HistogramTest, MergeAcrossThreadsIsExact) {
  // The property the whole design leans on: per-thread histograms merged
  // bucket-wise are bit-identical to one histogram that saw every sample.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  Histogram combined;
  std::vector<Histogram> per_thread(kThreads);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 7919 + 1);
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t v = rng() >> (rng() % 45);
        per_thread[static_cast<std::size_t>(t)].record(v);
        combined.record(v);
      }
    });
  }
  for (auto& w : workers) w.join();

  HistogramSnapshot merged;
  for (const auto& h : per_thread) merged.merge(h.snapshot());
  const HistogramSnapshot reference = combined.snapshot();

  EXPECT_EQ(merged.count, reference.count);
  EXPECT_EQ(merged.sum, reference.sum);
  EXPECT_EQ(merged.max, reference.max);
  ASSERT_EQ(merged.buckets.size(), reference.buckets.size());
  EXPECT_EQ(merged.buckets, reference.buckets) << "bucket-wise bit-identical";
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    EXPECT_EQ(merged.quantile(q), reference.quantile(q)) << "q=" << q;
  }
}

// --------------------------------------------------------------- registry

TEST(RegistryTest, MergesSamplesSharingNameAndLabels) {
  Registry reg;
  constexpr auto kShard = LabelKey::of("shard");
  Counter a, b, c;
  a.inc(3);
  b.inc(4);
  c.inc(10);
  auto h1 = reg.add_collector([&](telemetry::SampleSink& sink) {
    sink.counter("test_requests_total", "help", {{kShard, LabelValue::index(0)}},
                 a.value());
  });
  auto h2 = reg.add_collector([&](telemetry::SampleSink& sink) {
    sink.counter("test_requests_total", "help", {{kShard, LabelValue::index(0)}},
                 b.value());
    sink.counter("test_requests_total", "help", {{kShard, LabelValue::index(1)}},
                 c.value());
  });

  const auto families = reg.collect();
  ASSERT_EQ(families.size(), 1u);
  EXPECT_EQ(families[0].name, "test_requests_total");
  ASSERT_EQ(families[0].samples.size(), 2u) << "one series per label set";
  std::uint64_t shard0 = 0, shard1 = 0;
  for (const auto& s : families[0].samples) {
    ASSERT_EQ(s.labels.size(), 1u);
    if (s.labels[0].value.str() == "0") shard0 = static_cast<std::uint64_t>(s.value);
    if (s.labels[0].value.str() == "1") shard1 = static_cast<std::uint64_t>(s.value);
  }
  EXPECT_EQ(shard0, 7u) << "same (name, labels) from two collectors adds";
  EXPECT_EQ(shard1, 10u);
}

TEST(RegistryTest, HistogramsMergeAtScrape) {
  Registry reg;
  Histogram h1, h2;
  h1.record(100);
  h1.record(200);
  h2.record(300);
  auto c1 = reg.add_collector([&](telemetry::SampleSink& sink) {
    sink.histogram("test_latency_ns", "help", {}, h1);
  });
  auto c2 = reg.add_collector([&](telemetry::SampleSink& sink) {
    sink.histogram("test_latency_ns", "help", {}, h2);
  });
  const auto families = reg.collect();
  ASSERT_EQ(families.size(), 1u);
  ASSERT_EQ(families[0].samples.size(), 1u);
  EXPECT_EQ(families[0].samples[0].hist.count, 3u);
  EXPECT_EQ(families[0].samples[0].hist.sum, 600u);
  EXPECT_EQ(families[0].samples[0].hist.max, 300u);
}

TEST(RegistryTest, HandleDeregistersCollector) {
  Registry reg;
  Counter c;
  c.inc(1);
  {
    auto handle = reg.add_collector([&](telemetry::SampleSink& sink) {
      sink.counter("test_scoped_total", "help", {}, c.value());
    });
    EXPECT_EQ(reg.collect().size(), 1u);
  }
  EXPECT_TRUE(reg.collect().empty()) << "destroyed handle removed collector";
}

// ------------------------------------------------------------- exposition

TEST(ExpositionTest, PrometheusRenderIsWellFormed) {
  Registry reg;
  constexpr auto kShard = LabelKey::of("shard");
  Counter hits;
  hits.inc(42);
  Gauge depth;
  depth.set(-3);
  Histogram lat;
  lat.record(1000);
  lat.record(2000);
  auto h = reg.add_collector([&](telemetry::SampleSink& sink) {
    sink.counter("test_hits_total", "hits", {{kShard, LabelValue::index(2)}},
                 hits.value());
    sink.gauge("test_queue_depth", "depth", {}, depth.value());
    sink.histogram("test_call_ns", "latency", {}, lat);
  });

  const std::string page = telemetry::render_prometheus(reg);
  EXPECT_NE(page.find("# TYPE test_hits_total counter"), std::string::npos);
  EXPECT_NE(page.find("test_hits_total{shard=\"2\"} 42"), std::string::npos);
  EXPECT_NE(page.find("# TYPE test_queue_depth gauge"), std::string::npos);
  EXPECT_NE(page.find("test_queue_depth -3"), std::string::npos);
  EXPECT_NE(page.find("# TYPE test_call_ns summary"), std::string::npos);
  EXPECT_NE(page.find("test_call_ns{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(page.find("test_call_ns_count 2"), std::string::npos);
  EXPECT_NE(page.find("test_call_ns_sum 3000"), std::string::npos);
  EXPECT_NE(page.find("test_call_ns_max 2000"), std::string::npos);
  // Every non-comment line is "name{...} value" or "name value".
  std::size_t pos = 0;
  while (pos < page.size()) {
    const std::size_t eol = page.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "page must end with a newline";
    const std::string line = page.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_FALSE(line.substr(space + 1).empty()) << line;
  }
}

TEST(ExpositionTest, SnapshotJsonContainsFamiliesAndQuantiles) {
  Registry reg;
  Histogram lat;
  for (int i = 1; i <= 100; ++i) lat.record(static_cast<std::uint64_t>(i));
  auto h = reg.add_collector([&](telemetry::SampleSink& sink) {
    sink.histogram("test_json_ns", "latency", {}, lat);
  });
  const std::string json = telemetry::snapshot_json(reg);
  EXPECT_NE(json.find("\"test_json_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
}

// ---------------------------------------------------- redaction boundary

/// Pull every label value out of a rendered Prometheus page.
std::vector<std::string> exported_label_values(const std::string& page) {
  std::vector<std::string> values;
  std::size_t pos = 0;
  while ((pos = page.find('"', pos)) != std::string::npos) {
    const std::size_t end = page.find('"', pos + 1);
    if (end == std::string::npos) break;
    values.push_back(page.substr(pos + 1, end - pos - 1));
    pos = end + 1;
  }
  return values;
}

bool looks_redacted(const std::string& v) {
  // App-visible enums, shard/thread indices, and quantile floats only: the
  // whitelist charset plus a length cap no 16/32-byte secret hex fits under.
  if (v.size() > 20) return false;
  return std::all_of(v.begin(), v.end(), [](unsigned char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
           c == '.';
  });
}

TEST(RedactionTest, ExportedLabelsNeverCarrySecretShapedBytes) {
  // Exercise a full deployment so every instrumented component (runtime,
  // store shards, channel, enclave) has registered and exported samples,
  // then re-check the rendered boundary against the whitelist charset.
  sgx::Platform platform;
  store::ResultStore store(platform);
  auto enclave = platform.create_enclave("redaction-app");
  auto conn = store::connect_app(store, *enclave);
  auto session = std::move(conn.session);
  runtime::DedupRuntime rt(*enclave, std::move(conn.session_key),
                           std::move(conn.transport));
  rt.libraries().register_library("lib", "1", as_bytes("code"));
  runtime::Deduplicable<Bytes(const Bytes&)> f(
      rt, {"lib", "1", "f"},
      [](const Bytes& in) { return concat(in, as_bytes("+out")); });
  for (int i = 0; i < 4; ++i) {
    const Bytes in{static_cast<std::uint8_t>(i)};
    f(in);
    f(in);
  }
  rt.flush();

  const std::string page = telemetry::render_prometheus();
  ASSERT_NE(page.find("speed_runtime_calls_total"), std::string::npos);
  ASSERT_NE(page.find("speed_store_get_requests_total"), std::string::npos);
  ASSERT_NE(page.find("speed_channel_frames_total"), std::string::npos);
  ASSERT_NE(page.find("speed_epc_used_bytes"), std::string::npos);

  const auto values = exported_label_values(page);
  ASSERT_FALSE(values.empty());
  for (const auto& v : values) {
    EXPECT_TRUE(looks_redacted(v))
        << "label value escaped the redaction whitelist: \"" << v << "\"";
  }
  // Belt and braces: no exported label may be long enough to smuggle even
  // half a tag (tags are 32 bytes, 64 hex chars).
  for (const auto& v : values) EXPECT_LE(v.size(), 20u);
}

// ----------------------------------------------------------------- traces

TEST(TraceRingTest, RingIsBoundedAndKeepsNewest) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    telemetry::TraceRecord r;
    r.result_bytes = i;
    ring.push(r);
  }
  EXPECT_EQ(ring.pushed(), 10u);
  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].id, 6 + i) << "oldest-to-newest order";
    EXPECT_EQ(records[i].result_bytes, 6 + i);
  }
}

TEST(TraceRingTest, DisabledSpanRecordsNothing) {
  TraceRing ring(4);
  { TraceSpan span(nullptr); }
  EXPECT_EQ(ring.pushed(), 0u);
}

TEST(TraceTest, RuntimePipelinePushesSpansWithStagesAndOutcomes) {
  TraceRing ring(64);
  sgx::Platform platform;
  store::ResultStore store(platform);
  auto enclave = platform.create_enclave("trace-app");
  auto conn = store::connect_app(store, *enclave);
  auto session = std::move(conn.session);
  runtime::RuntimeConfig cfg;
  cfg.trace_ring = &ring;
  cfg.local_cache = false;  // force the second call through the store
  runtime::DedupRuntime rt(*enclave, std::move(conn.session_key),
                           std::move(conn.transport), cfg);
  rt.libraries().register_library("lib", "1", as_bytes("code"));
  runtime::Deduplicable<Bytes(const Bytes&)> f(
      rt, {"lib", "1", "f"},
      [](const Bytes& in) { return concat(in, as_bytes("+out")); });

  const Bytes in = to_bytes("traced");
  const Bytes out = f(in);
  rt.flush();
  f(in);

  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(), 2u);
  const auto& miss = records[0];
  const auto& hit = records[1];

  EXPECT_EQ(miss.outcome, CallOutcome::kMiss);
  // result_bytes is the size of the *serialized* result (what the store
  // round trips carry), not the app-level payload.
  EXPECT_GE(miss.result_bytes, out.size());
  EXPECT_GT(miss.total_ns, 0u);
  EXPECT_GT(miss.stage_ns[static_cast<std::size_t>(Stage::kCompute)], 0u);
  EXPECT_GT(miss.stage_ns[static_cast<std::size_t>(Stage::kStoreGet)], 0u);

  EXPECT_EQ(hit.outcome, CallOutcome::kStoreHit);
  EXPECT_EQ(hit.result_bytes, miss.result_bytes)
      << "hit and miss serve the same serialized result";
  EXPECT_GT(hit.stage_ns[static_cast<std::size_t>(Stage::kStoreGet)], 0u);
  EXPECT_GT(hit.stage_ns[static_cast<std::size_t>(Stage::kRecover)], 0u);
  EXPECT_EQ(hit.stage_ns[static_cast<std::size_t>(Stage::kCompute)], 0u)
      << "a store hit never runs the computation";
}

TEST(TraceTest, LocalCacheHitIsTracedAsLocalHit) {
  TraceRing ring(64);
  sgx::Platform platform;
  store::ResultStore store(platform);
  auto enclave = platform.create_enclave("trace-cache-app");
  auto conn = store::connect_app(store, *enclave);
  auto session = std::move(conn.session);
  runtime::RuntimeConfig cfg;
  cfg.trace_ring = &ring;
  runtime::DedupRuntime rt(*enclave, std::move(conn.session_key),
                           std::move(conn.transport), cfg);
  rt.libraries().register_library("lib", "1", as_bytes("code"));
  runtime::Deduplicable<Bytes(const Bytes&)> f(
      rt, {"lib", "1", "f"},
      [](const Bytes& in) { return concat(in, as_bytes("+out")); });

  const Bytes in = to_bytes("cached");
  f(in);
  f(in);

  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].outcome, CallOutcome::kMiss);
  EXPECT_EQ(records[1].outcome, CallOutcome::kLocalHit);
  EXPECT_EQ(records[1].stage_ns[static_cast<std::size_t>(Stage::kStoreGet)], 0u)
      << "a local hit never leaves the enclave";
}

TEST(TraceTest, TracesJsonRendersTheRing) {
  TraceRing ring(8);
  telemetry::TraceRecord r;
  r.outcome = CallOutcome::kStoreHit;
  r.total_ns = 12345;
  r.stage_ns[static_cast<std::size_t>(Stage::kStoreGet)] = 9999;
  r.result_bytes = 77;
  ring.push(r);
  const std::string json = telemetry::traces_json(ring);
  EXPECT_NE(json.find("\"store_hit\""), std::string::npos);
  EXPECT_NE(json.find("\"store_get\""), std::string::npos);
  EXPECT_NE(json.find("12345"), std::string::npos);
  EXPECT_NE(json.find("77"), std::string::npos);
}

// ----------------------------------------------------------- admin server

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(AdminServerTest, ServesMetricsSnapshotTracesAndHealth) {
  Registry reg;
  Counter c;
  c.inc(5);
  auto handle = reg.add_collector([&](telemetry::SampleSink& sink) {
    sink.counter("test_admin_total", "help", {}, c.value());
  });
  TraceRing ring(4);
  telemetry::AdminServer server(0, &reg, &ring);
  ASSERT_NE(server.port(), 0) << "ephemeral port bound";

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE test_admin_total counter"), std::string::npos);
  EXPECT_NE(metrics.find("test_admin_total 5"), std::string::npos);

  const std::string json = http_get(server.port(), "/snapshot.json");
  EXPECT_NE(json.find("200 OK"), std::string::npos);
  EXPECT_NE(json.find("application/json"), std::string::npos);
  EXPECT_NE(json.find("test_admin_total"), std::string::npos);

  const std::string traces = http_get(server.port(), "/traces.json");
  EXPECT_NE(traces.find("200 OK"), std::string::npos);

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  EXPECT_GE(server.requests_served(), 5u);
}

// --------------------------------------------------- stats views vs cells

TEST(StatsViewTest, RuntimeStatsViewMatchesRegistryExport) {
  sgx::Platform platform;
  store::ResultStore store(platform);
  auto enclave = platform.create_enclave("view-app");
  auto conn = store::connect_app(store, *enclave);
  auto session = std::move(conn.session);
  runtime::DedupRuntime rt(*enclave, std::move(conn.session_key),
                           std::move(conn.transport));
  rt.libraries().register_library("lib", "1", as_bytes("code"));
  runtime::Deduplicable<Bytes(const Bytes&)> f(
      rt, {"lib", "1", "f"},
      [](const Bytes& in) { return concat(in, as_bytes("+out")); });
  f(to_bytes("a"));
  f(to_bytes("a"));
  f(to_bytes("b"));
  rt.flush();

  const auto s = rt.stats();
  EXPECT_EQ(s.calls, 3u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.local_hits, 1u);

  // The same cells export through the global registry; this runtime's
  // counts are a lower bound (other live components may add).
  std::uint64_t exported_calls = 0;
  for (const auto& family : Registry::global().collect()) {
    if (family.name != "speed_runtime_calls_total") continue;
    for (const auto& sample : family.samples) {
      exported_calls += static_cast<std::uint64_t>(sample.value);
    }
  }
  EXPECT_GE(exported_calls, 3u);
}

}  // namespace
}  // namespace speed
