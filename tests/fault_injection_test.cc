// Fault-tolerance tests: every store failure mode must degrade a marked
// call to local compute (fail-open), never throw into the application, and
// the ResilientTransport must reconnect with a fresh channel key and trip /
// recover its circuit breaker as the store dies and comes back.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <thread>
#include <vector>

#include "net/fault.h"
#include "net/resilient.h"
#include "runtime/speed.h"
#include "store/tcp_server.h"
#include "telemetry/registry.h"

namespace speed {
namespace {

using net::FaultInjectingTransport;
using net::ResilienceConfig;
using net::ResilientTransport;
using Fault = net::FaultInjectingTransport::Fault;

sgx::CostModel fast_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  m.epc_page_swap_ns = 0;
  return m;
}

ResilienceConfig fast_resilience() {
  ResilienceConfig rc;
  rc.reconnect_attempts = 2;
  rc.backoff_initial_ms = 1;
  rc.backoff_max_ms = 2;
  rc.breaker_threshold = 3;
  rc.breaker_cooldown_ms = 30;
  return rc;
}

/// This file exercises the transport/degrade path: repeated calls must
/// actually reach the (faulty) store, so the runtime's in-enclave result
/// cache — which would serve the repeats locally — stays off.
runtime::RuntimeConfig no_local_cache() {
  runtime::RuntimeConfig cfg;
  cfg.local_cache = false;
  return cfg;
}

/// An application whose transport chain is
///   DedupRuntime -> ResilientTransport -> FaultInjectingTransport -> store,
/// with a reconnect hook that re-runs the in-process attested handshake
/// (refusing while `store_up` is false), mirroring a TCP redial.
struct FaultyApp {
  FaultyApp(sgx::Platform& platform, store::ResultStore& store,
            const std::string& identity,
            FaultInjectingTransport::Schedule schedule,
            std::shared_ptr<std::atomic<bool>> store_up,
            ResilienceConfig rc = fast_resilience(),
            runtime::RuntimeConfig config = no_local_cache())
      : enclave(platform.create_enclave(identity)) {
    // Reconnects build fresh FaultInjectingTransports whose per-instance
    // counters restart at 0; rebase the schedule on a shared counter so a
    // call index means "round trips since the app started", not "since the
    // last reconnect".
    auto counter = std::make_shared<std::atomic<std::uint64_t>>(0);
    FaultInjectingTransport::Schedule global_schedule =
        [schedule, counter](std::uint64_t) {
          return schedule(counter->fetch_add(1));
        };
    auto conn = store::connect_app(store, *enclave);
    sessions.push_back(std::move(conn.session));
    auto faulty = std::make_unique<FaultInjectingTransport>(
        std::move(conn.transport), global_schedule);
    auto reconnect = [this, &store, store_up, global_schedule]()
        -> ResilientTransport::Connection {
      if (!store_up->load()) throw net::TcpError("injected: store down");
      auto fresh = store::connect_app(store, *enclave);
      sessions.push_back(std::move(fresh.session));
      return {std::make_unique<FaultInjectingTransport>(
                  std::move(fresh.transport), global_schedule),
              std::move(fresh.session_key)};
    };
    auto resilient = std::make_unique<ResilientTransport>(
        std::move(faulty), std::move(reconnect), rc);
    transport = resilient.get();
    rt.emplace(*enclave, std::move(conn.session_key), std::move(resilient),
               std::move(config));
    rt->libraries().register_library("lib", "1", as_bytes("code"));
  }

  std::unique_ptr<sgx::Enclave> enclave;
  std::vector<std::unique_ptr<store::StoreSession>> sessions;
  ResilientTransport* transport = nullptr;
  std::optional<runtime::DedupRuntime> rt;
};

Bytes expected_result(const Bytes& in) { return concat(in, as_bytes("+out")); }

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() : platform_(fast_model()), store_(platform_) {}

  runtime::Deduplicable<Bytes(const Bytes&)> make_fn(FaultyApp& app,
                                                     std::atomic<int>& execs) {
    return runtime::Deduplicable<Bytes(const Bytes&)>(
        *app.rt, {"lib", "1", "f"}, [&execs](const Bytes& in) {
          ++execs;
          return expected_result(in);
        });
  }

  sgx::Platform platform_;
  store::ResultStore store_;
};

// --------------------------------------------------------------- degrade

TEST_F(FaultInjectionTest, GarbageResponsesDegradeEveryCall) {
  auto up = std::make_shared<std::atomic<bool>>(true);
  FaultyApp app(platform_, store_, "garbage-app",
                FaultInjectingTransport::always(Fault::kGarbage), up);
  std::atomic<int> execs{0};
  auto f = make_fn(app, execs);

  for (int i = 0; i < 8; ++i) {
    const Bytes in{static_cast<std::uint8_t>(i)};
    EXPECT_EQ(f(in), expected_result(in));
  }
  EXPECT_EQ(execs.load(), 8);
  const auto s = app.rt->stats();
  EXPECT_EQ(s.degraded_calls, 8u) << "every call served locally";
  EXPECT_EQ(s.hits, 0u);
}

TEST_F(FaultInjectionTest, TruncatedResponseDegradesOnceThenRecovers) {
  auto up = std::make_shared<std::atomic<bool>>(true);
  FaultyApp app(platform_, store_, "trunc-app",
                FaultInjectingTransport::fail_window(0, 1, Fault::kTruncate),
                up);
  std::atomic<int> execs{0};
  auto f = make_fn(app, execs);

  const Bytes in = to_bytes("payload");
  EXPECT_EQ(f(in), expected_result(in));  // truncated frame -> local compute
  EXPECT_EQ(app.rt->stats().degraded_calls, 1u);

  EXPECT_EQ(f(in), expected_result(in));  // reconnected: miss, async PUT
  app.rt->flush();
  EXPECT_EQ(f(in), expected_result(in));  // hit
  const auto s = app.rt->stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(execs.load(), 2);
  EXPECT_GE(app.transport->stats().reconnects, 1u)
      << "fresh channel key after the bad frame";
}

TEST_F(FaultInjectionTest, TimeoutDegradesWithoutException) {
  auto up = std::make_shared<std::atomic<bool>>(true);
  FaultyApp app(platform_, store_, "timeout-app",
                FaultInjectingTransport::fail_window(0, 2, Fault::kTimeout),
                up);
  std::atomic<int> execs{0};
  auto f = make_fn(app, execs);

  const Bytes in = to_bytes("slow");
  EXPECT_EQ(f(in), expected_result(in));
  EXPECT_EQ(f(in), expected_result(in));
  EXPECT_GE(app.rt->stats().degraded_calls, 1u);
  EXPECT_EQ(execs.load(), 2);
}

TEST_F(FaultInjectionTest, PlainTransportWithoutReconnectStillFailsOpen) {
  // No ResilientTransport at all: a FaultInjectingTransport straight over
  // the loopback. After the first failure the channel stays poisoned (no
  // way to rekey), so every call degrades — but none ever throws.
  auto enclave = platform_.create_enclave("bare-app");
  auto conn = store::connect_app(store_, *enclave);
  runtime::DedupRuntime rt(
      *enclave, std::move(conn.session_key),
      std::make_unique<FaultInjectingTransport>(
          std::move(conn.transport),
          FaultInjectingTransport::fail_window(1, 2, Fault::kDisconnect)),
      no_local_cache());
  rt.libraries().register_library("lib", "1", as_bytes("code"));
  std::atomic<int> execs{0};
  runtime::Deduplicable<Bytes(const Bytes&)> f(
      rt, {"lib", "1", "f"}, [&execs](const Bytes& in) {
        ++execs;
        return expected_result(in);
      });

  const Bytes a = to_bytes("a"), b = to_bytes("b");
  EXPECT_EQ(f(a), expected_result(a));  // call 0 healthy (miss)
  EXPECT_EQ(f(b), expected_result(b));  // call fails -> degrade + poison
  EXPECT_EQ(f(a), expected_result(a));  // poisoned forever -> degrade
  const auto s = rt.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_GE(s.degraded_calls, 2u);
  EXPECT_EQ(execs.load(), 3);
}

TEST_F(FaultInjectionTest, SyncPutFailureIsSwallowedAndCounted) {
  // Synchronous-PUT mode: the PUT round trip dies but the call still
  // returns the computed result; later calls degrade on the poisoned
  // channel instead of throwing.
  auto enclave = platform_.create_enclave("sync-app");
  auto conn = store::connect_app(store_, *enclave);
  runtime::RuntimeConfig cfg;
  cfg.async_put = false;
  runtime::DedupRuntime rt(
      *enclave, std::move(conn.session_key),
      std::make_unique<FaultInjectingTransport>(
          std::move(conn.transport),
          // call 0 = GET (healthy), call 1 = PUT (killed)
          FaultInjectingTransport::fail_window(1, 2, Fault::kDisconnect)),
      cfg);
  rt.libraries().register_library("lib", "1", as_bytes("code"));
  std::atomic<int> execs{0};
  runtime::Deduplicable<Bytes(const Bytes&)> f(
      rt, {"lib", "1", "f"}, [&execs](const Bytes& in) {
        ++execs;
        return expected_result(in);
      });

  const Bytes in = to_bytes("x");
  EXPECT_EQ(f(in), expected_result(in));
  const auto s = rt.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.puts_rejected, 1u);
  EXPECT_EQ(execs.load(), 1);
}

// ------------------------------------------------- breaker state machine

TEST_F(FaultInjectionTest, BreakerOpensHalfOpensAndCloses) {
  auto up = std::make_shared<std::atomic<bool>>(true);
  const auto schedule = [up](std::uint64_t) {
    return up->load() ? Fault::kNone : Fault::kDisconnect;
  };
  FaultyApp app(platform_, store_, "breaker-app", schedule, up);
  std::atomic<int> execs{0};
  auto f = make_fn(app, execs);

  const Bytes in = to_bytes("popular");
  EXPECT_EQ(f(in), expected_result(in));
  app.rt->flush();
  EXPECT_EQ(f(in), expected_result(in));
  EXPECT_EQ(app.rt->stats().hits, 1u) << "healthy baseline";

  up->store(false);  // store dies: round trips and redials both fail
  const auto rc = app.transport->config();
  for (int i = 0; i < rc.breaker_threshold + 4; ++i) {
    EXPECT_EQ(f(in), expected_result(in)) << "degraded call " << i;
  }
  EXPECT_EQ(app.transport->breaker_state(),
            ResilientTransport::BreakerState::kOpen);
  const auto mid = app.transport->stats();
  EXPECT_GE(mid.breaker_opens, 1u);
  EXPECT_GE(mid.short_circuits, 1u) << "open breaker bypasses the store";

  up->store(true);  // store recovers; wait out the cooldown
  std::this_thread::sleep_for(
      std::chrono::milliseconds(rc.breaker_cooldown_ms + 20));
  EXPECT_EQ(f(in), expected_result(in));  // half-open probe: reconnect+GET
  EXPECT_EQ(app.transport->breaker_state(),
            ResilientTransport::BreakerState::kClosed);
  const auto before_hits = app.rt->stats().hits;
  EXPECT_EQ(f(in), expected_result(in));
  EXPECT_GT(app.rt->stats().hits, before_hits) << "hits resume after recovery";
}

// ------------------------------------------------- resilience telemetry

/// Sum the exported value of `name` across all samples in the process-wide
/// registry (other live transports may contribute; callers assert >=).
std::uint64_t exported_total(const std::string& name) {
  std::uint64_t total = 0;
  for (const auto& family : telemetry::Registry::global().collect()) {
    if (family.name != name) continue;
    for (const auto& sample : family.samples) {
      total += static_cast<std::uint64_t>(sample.value);
    }
  }
  return total;
}

TEST_F(FaultInjectionTest, ReconnectAndBreakerMetricsExportThroughRegistry) {
  // Drive the transport through failure -> open breaker -> short circuits
  // -> recovery and assert the story is visible both in the per-instance
  // Stats view and in the process-wide speed_transport_* export.
  const std::uint64_t base_reconnects =
      exported_total("speed_transport_reconnects_total");
  const std::uint64_t base_opens =
      exported_total("speed_transport_breaker_opens_total");
  const std::uint64_t base_shorts =
      exported_total("speed_transport_short_circuits_total");
  const std::uint64_t base_failures =
      exported_total("speed_transport_failures_total");

  auto up = std::make_shared<std::atomic<bool>>(true);
  const auto schedule = [up](std::uint64_t) {
    return up->load() ? Fault::kNone : Fault::kDisconnect;
  };
  FaultyApp app(platform_, store_, "metrics-app", schedule, up);
  std::atomic<int> execs{0};
  auto f = make_fn(app, execs);

  const Bytes in = to_bytes("observed");
  EXPECT_EQ(f(in), expected_result(in));  // healthy miss
  app.rt->flush();

  up->store(false);
  const auto rc = app.transport->config();
  for (int i = 0; i < rc.breaker_threshold + 3; ++i) {
    EXPECT_EQ(f(in), expected_result(in));
  }
  const auto mid = app.transport->stats();
  EXPECT_GE(mid.failures, static_cast<std::uint64_t>(rc.breaker_threshold));
  EXPECT_GE(mid.reconnect_failures, 1u) << "redials refused while down";
  EXPECT_GE(mid.breaker_opens, 1u);
  EXPECT_GE(mid.short_circuits, 1u);

  // The registry exports the same cells the Stats view reads.
  EXPECT_GE(exported_total("speed_transport_failures_total"),
            base_failures + mid.failures);
  EXPECT_GE(exported_total("speed_transport_breaker_opens_total"),
            base_opens + mid.breaker_opens);
  EXPECT_GE(exported_total("speed_transport_short_circuits_total"),
            base_shorts + mid.short_circuits);
  EXPECT_GE(exported_total("speed_transport_breaker_open"), 1u)
      << "open-breaker gauge raised while the store is down";

  up->store(true);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(rc.breaker_cooldown_ms + 20));
  EXPECT_EQ(f(in), expected_result(in));  // half-open probe reconnects
  const auto after = app.transport->stats();
  EXPECT_GE(after.reconnects, 1u);
  EXPECT_GE(exported_total("speed_transport_reconnects_total"),
            base_reconnects + after.reconnects);
  EXPECT_GE(exported_total("speed_transport_round_trips_total"), 1u);
}

// ------------------------------------------------ acceptance: 10k calls

TEST_F(FaultInjectionTest, TenThousandCallsSurviveStoreOutage) {
  auto up = std::make_shared<std::atomic<bool>>(true);
  const auto schedule = [up](std::uint64_t) {
    return up->load() ? Fault::kNone : Fault::kDisconnect;
  };
  ResilienceConfig rc = fast_resilience();
  rc.breaker_cooldown_ms = 5;  // recover quickly once the fault clears
  FaultyApp app(platform_, store_, "workload-app", schedule, up, rc);
  std::atomic<int> execs{0};
  auto f = make_fn(app, execs);

  constexpr int kCalls = 10000;
  constexpr int kKillAt = 2000;    // store dies after K calls...
  constexpr int kReviveAt = 6000;  // ...and comes back here
  constexpr int kDistinct = 64;

  std::uint64_t hits_after_revival = 0;
  for (int i = 0; i < kCalls; ++i) {
    if (i == kKillAt) up->store(false);
    if (i == kReviveAt) {
      up->store(true);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(rc.breaker_cooldown_ms + 5));
    }
    const Bytes in{static_cast<std::uint8_t>(i % kDistinct)};
    Bytes out;
    ASSERT_NO_THROW(out = f(in)) << "call " << i;
    ASSERT_EQ(out, expected_result(in)) << "call " << i;
    if (i >= kReviveAt && f.last_was_deduplicated()) ++hits_after_revival;
  }

  const auto s = app.rt->stats();
  EXPECT_EQ(s.calls, static_cast<std::uint64_t>(kCalls));
  EXPECT_GT(s.degraded_calls, 0u);
  EXPECT_LT(s.degraded_calls, static_cast<std::uint64_t>(kCalls));
  EXPECT_GT(hits_after_revival, 0u) << "dedup service resumed";
  EXPECT_GE(app.transport->stats().breaker_opens, 1u);
  EXPECT_EQ(app.transport->breaker_state(),
            ResilientTransport::BreakerState::kClosed);
  // Fail-open invariant: every single call produced the right bytes, and
  // compute ran exactly once per miss/degrade (never for a hit).
  EXPECT_EQ(static_cast<std::uint64_t>(execs.load()),
            s.misses + s.degraded_calls + s.failed_recoveries);
}

// ------------------------------------------------------ PUT queue bounds

TEST_F(FaultInjectionTest, PutQueueDropsOldestWhenOverCapacity) {
  // Several producer threads race one PUT worker over a transport with real
  // latency: the queue must stay bounded, dropping the oldest PUTs.
  auto enclave = platform_.create_enclave("queue-app");
  auto conn = store::connect_app(store_, *enclave, /*one_way_ns=*/100000);
  runtime::RuntimeConfig cfg;
  cfg.put_queue_capacity = 1;
  runtime::DedupRuntime rt(*enclave, std::move(conn.session_key),
                           std::move(conn.transport), cfg);
  rt.libraries().register_library("lib", "1", as_bytes("code"));
  std::atomic<int> execs{0};
  runtime::Deduplicable<Bytes(const Bytes&)> f(
      rt, {"lib", "1", "f"}, [&execs](const Bytes& in) {
        ++execs;
        return expected_result(in);
      });

  constexpr int kThreads = 3;
  constexpr int kPerThread = 60;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&f, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const Bytes in{static_cast<std::uint8_t>(t), static_cast<std::uint8_t>(i)};
        EXPECT_EQ(f(in), expected_result(in));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(rt.flush(10000));

  const auto s = rt.stats();
  EXPECT_EQ(s.misses, static_cast<std::uint64_t>(kThreads * kPerThread));
  // Conservation: every enqueued PUT was either delivered or dropped.
  EXPECT_EQ(s.puts_sent + s.puts_dropped,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_GT(s.puts_dropped, 0u) << "capacity bound enforced under pressure";
  EXPECT_EQ(store_.stats().stored, s.puts_sent);
}

TEST_F(FaultInjectionTest, FlushDeadlineBoundsShutdownOnSlowStore) {
  // A transport that answers, slowly: flush with a deadline returns false
  // promptly instead of hanging for the store's convenience.
  class SlowTransport : public net::Transport {
   public:
    SlowTransport(std::unique_ptr<net::Transport> inner, int delay_ms)
        : inner_(std::move(inner)), delay_ms_(delay_ms) {}
    Bytes round_trip(ByteView request) override {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
      return inner_->round_trip(request);
    }

   private:
    std::unique_ptr<net::Transport> inner_;
    int delay_ms_;
  };

  auto enclave = platform_.create_enclave("slow-app");
  auto conn = store::connect_app(store_, *enclave);
  runtime::DedupRuntime rt(
      *enclave, std::move(conn.session_key),
      std::make_unique<SlowTransport>(std::move(conn.transport), 150));
  rt.libraries().register_library("lib", "1", as_bytes("code"));
  runtime::Deduplicable<Bytes(const Bytes&)> f(
      rt, {"lib", "1", "f"}, [](const Bytes& in) { return expected_result(in); });

  f(to_bytes("x"));  // miss: enqueues one async PUT (150 ms on the wire)
  EXPECT_FALSE(rt.flush(10)) << "deadline expires before the PUT lands";
  EXPECT_TRUE(rt.flush(-1)) << "unbounded flush still drains";
  EXPECT_EQ(rt.stats().puts_sent, 1u);
}

// ------------------------------------------------------- socket deadlines

TEST(SocketTimeoutTest, RecvFrameTimesOutOnSilentPeer) {
  net::TcpListener listener(0);
  net::FramedSocket client = net::tcp_connect("127.0.0.1", listener.port());
  net::FramedSocket server = listener.accept();

  client.set_timeouts(/*send_ms=*/-1, /*recv_ms=*/50);
  Stopwatch sw;
  EXPECT_THROW(client.recv_frame(), net::TcpTimeout);
  EXPECT_LT(sw.elapsed_ms(), 5000.0);
  (void)server;
}

TEST(SocketTimeoutTest, TcpTransportRoundTripDeadline) {
  net::TcpListener listener(0);
  net::FramedSocket client = net::tcp_connect("127.0.0.1", listener.port());
  net::FramedSocket server = listener.accept();

  net::TcpTransport transport(std::move(client), /*deadline_ms=*/50);
  EXPECT_THROW(transport.round_trip(as_bytes("ping")), net::TcpTimeout);
  // The request did arrive; only the response is missing.
  EXPECT_EQ(server.recv_frame(), to_bytes("ping"));
}

TEST(SocketTimeoutTest, DeadlineZeroStillDeliversReadyData) {
  net::TcpListener listener(0);
  net::FramedSocket client = net::tcp_connect("127.0.0.1", listener.port());
  net::FramedSocket server = listener.accept();

  server.send_frame(as_bytes("already here"));
  // Give the loopback a moment to make the bytes readable.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  client.set_timeouts(-1, 0);
  EXPECT_EQ(client.recv_frame(), to_bytes("already here"));
}

// --------------------------------------------------- store session errors

TEST(StoreSessionErrorTest, BadFrameCostsOneSessionNotTheServer) {
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  store::StoreTcpServer server(result_store, 0);

  // Client A: real handshake, then a frame that is not a channel frame.
  auto enclave_a = platform.create_enclave("rowdy-client");
  auto conn_a = store::connect_tcp_app(*enclave_a,
                                       result_store.enclave().measurement(),
                                       "127.0.0.1", server.port());
  auto* tcp_a = static_cast<net::TcpTransport*>(conn_a.transport.get());
  tcp_a->socket().send_frame(as_bytes("definitely not a secure frame"));
  // Server drops only this session; our next read sees EOF.
  EXPECT_FALSE(tcp_a->socket().try_recv_frame().has_value());
  for (int i = 0; i < 200 && server.session_errors() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.session_errors(), 1u);
  EXPECT_EQ(server.connections_rejected(), 0u)
      << "post-handshake death is a session error, not a rejection";

  // Client B connects afterwards and gets full service.
  auto enclave_b = platform.create_enclave("polite-client");
  auto conn_b = store::connect_tcp_app(*enclave_b,
                                       result_store.enclave().measurement(),
                                       "127.0.0.1", server.port());
  runtime::DedupRuntime rt(*enclave_b, std::move(conn_b.session_key),
                           std::move(conn_b.transport));
  rt.libraries().register_library("lib", "1", as_bytes("code"));
  runtime::Deduplicable<Bytes(const Bytes&)> f(
      rt, {"lib", "1", "f"}, [](const Bytes& in) { return expected_result(in); });
  EXPECT_EQ(f(to_bytes("svc")), expected_result(to_bytes("svc")));
  EXPECT_EQ(server.connections_accepted(), 2u);
}

// ------------------------------------------- resilient TCP client helper

TEST(ResilientTcpTest, ClientSurvivesStoreRestart) {
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  auto server = std::make_unique<store::StoreTcpServer>(result_store, 0);
  const std::uint16_t port = server->port();

  net::ResilienceConfig rc;
  rc.reconnect_attempts = 1;
  rc.backoff_initial_ms = 1;
  rc.breaker_threshold = 100;  // keep probing: we restart on a fixed port
  auto enclave = platform.create_enclave("resilient-client");
  auto conn = store::connect_tcp_app_resilient(
      *enclave, result_store.enclave().measurement(), "127.0.0.1", port, rc,
      /*deadline_ms=*/2000);
  runtime::DedupRuntime rt(*enclave, std::move(conn.session_key),
                           std::move(conn.transport), no_local_cache());
  rt.libraries().register_library("lib", "1", as_bytes("code"));
  std::atomic<int> execs{0};
  runtime::Deduplicable<Bytes(const Bytes&)> f(
      rt, {"lib", "1", "f"}, [&execs](const Bytes& in) {
        ++execs;
        return expected_result(in);
      });

  const Bytes in = to_bytes("asset");
  EXPECT_EQ(f(in), expected_result(in));
  rt.flush();
  EXPECT_EQ(f(in), expected_result(in));
  EXPECT_EQ(rt.stats().hits, 1u);

  // Store process "restarts": the old server dies mid-session, a new one
  // binds the same port against the same trusted dictionary.
  server->stop();
  server.reset();
  const Bytes other = to_bytes("during-outage");
  EXPECT_EQ(f(other), expected_result(other)) << "degrades while down";
  EXPECT_GE(rt.stats().degraded_calls, 1u);

  server = std::make_unique<store::StoreTcpServer>(result_store, port);
  // Reconnect + fresh handshake on the next calls; hits resume.
  Bytes out;
  std::uint64_t hits = 0;
  for (int i = 0; i < 50 && hits == 0; ++i) {
    ASSERT_NO_THROW(out = f(in));
    ASSERT_EQ(out, expected_result(in));
    hits = rt.stats().hits - 1;  // beyond the pre-restart hit
    if (hits == 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(hits, 0u) << "dedup hits resume against the restarted store";
  EXPECT_EQ(execs.load(), 2) << "only the miss and the degraded call computed";
}

}  // namespace
}  // namespace speed
