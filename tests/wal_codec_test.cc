// WAL record codec: property-based round trips plus checked-in golden byte
// vectors pinning the on-disk format. If an intentional layout change lands,
// bump kWalFormatVersion and regenerate the vectors here — these tests
// exist to make silent format drift impossible.
#include <gtest/gtest.h>

#include <string>

#include "store/wal_codec.h"
#include "test_seed.h"

namespace speed::store {
namespace {

std::string to_hex(ByteView data) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (const std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(const std::string& hex) {
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

/// Fixed, human-auditable insert record used by the golden vectors.
WalRecord golden_insert() {
  WalRecord rec;
  rec.op = WalRecord::Op::kInsert;
  for (std::size_t i = 0; i < rec.tag.size(); ++i) {
    rec.tag[i] = static_cast<std::uint8_t>(i);
  }
  rec.owner.fill(0xaa);
  rec.challenge = {0x01, 0x02, 0x03, 0x04};
  rec.wrapped_key = {0x05, 0x06, 0x07};
  rec.blob_digest.fill(0xbb);
  rec.blob_bytes = 0x1122334455667788ull;
  rec.ref.segment = 7;
  rec.ref.offset = 4096;
  rec.ref.length = 512;
  rec.hits = 3;
  return rec;
}

WalRecord golden_erase() {
  WalRecord rec;
  rec.op = WalRecord::Op::kErase;
  for (std::size_t i = 0; i < rec.tag.size(); ++i) {
    rec.tag[i] = static_cast<std::uint8_t>(0xff - i);
  }
  return rec;
}

// Golden vectors for on-disk format version 1. Regenerate ONLY on an
// intentional, version-bumped format change: the test failure output prints
// the new actual hex.
constexpr const char* kGoldenInsertHex =
    "0101000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
    "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
    "040000000102030403000000050607"
    "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
    "8877665544332211"
    "07000000"
    "0010000000000000"
    "0002000000000000"
    "0300000000000000";
constexpr const char* kGoldenEraseHex =
    "0102fffefdfcfbfaf9f8f7f6f5f4f3f2f1f0efeeedecebeae9e8e7e6e5e4e3e2e1e0";
constexpr const char* kGoldenChainAadHex =
    "0f00000073706565642d73746f72652d77616c"  // var "speed-store-wal"
    "01"                                       // format version
    "2a00000000000000"                         // seq = 42
    "101112131415161718191a1b1c1d1e1f";        // prev GCM tag

TEST(WalCodecTest, GoldenInsertVector) {
  const Bytes encoded = encode_wal_record(golden_insert());
  EXPECT_EQ(to_hex(encoded), kGoldenInsertHex)
      << "on-disk WAL insert layout changed — if intentional, bump "
         "kWalFormatVersion and regenerate this vector";
  // And the checked-in bytes decode to the exact record (guards against a
  // compensating encode+decode change).
  EXPECT_EQ(decode_wal_record(from_hex(kGoldenInsertHex)), golden_insert());
}

TEST(WalCodecTest, GoldenEraseVector) {
  const Bytes encoded = encode_wal_record(golden_erase());
  EXPECT_EQ(to_hex(encoded), kGoldenEraseHex)
      << "on-disk WAL erase layout changed — if intentional, bump "
         "kWalFormatVersion and regenerate this vector";
  EXPECT_EQ(decode_wal_record(from_hex(kGoldenEraseHex)), golden_erase());
}

TEST(WalCodecTest, GoldenChainAadVector) {
  WalChainTag prev{};
  for (std::size_t i = 0; i < prev.size(); ++i) {
    prev[i] = static_cast<std::uint8_t>(0x10 + i);
  }
  EXPECT_EQ(to_hex(chain_aad(42, prev)), kGoldenChainAadHex)
      << "chain AAD layout changed — this orphans every existing log; if "
         "intentional, bump kWalFormatVersion and regenerate";
}

TEST(WalCodecTest, PropertyRoundTrip) {
  SPEED_SEEDED_RNG(rng, 0xc0dec0de01ull);
  for (int i = 0; i < 500; ++i) {
    WalRecord rec;
    if (rng.below(4) == 0) {
      rec.op = WalRecord::Op::kErase;
      Bytes tag = rng.bytes(rec.tag.size());
      std::copy(tag.begin(), tag.end(), rec.tag.begin());
    } else {
      rec.op = WalRecord::Op::kInsert;
      Bytes tag = rng.bytes(rec.tag.size());
      std::copy(tag.begin(), tag.end(), rec.tag.begin());
      Bytes owner = rng.bytes(rec.owner.size());
      std::copy(owner.begin(), owner.end(), rec.owner.begin());
      rec.challenge = rng.bytes(rng.below(128));
      rec.wrapped_key = rng.bytes(rng.below(128));
      Bytes digest = rng.bytes(rec.blob_digest.size());
      std::copy(digest.begin(), digest.end(), rec.blob_digest.begin());
      rec.blob_bytes = rng();
      rec.ref.segment = static_cast<std::uint32_t>(rng());
      rec.ref.offset = rng();
      rec.ref.length = rng();
      rec.hits = rng();
    }
    const Bytes encoded = encode_wal_record(rec);
    EXPECT_EQ(decode_wal_record(encoded), rec);
  }
}

TEST(WalCodecTest, UnsupportedVersionFailsLoudly) {
  Bytes encoded = encode_wal_record(golden_insert());
  encoded[0] = kWalFormatVersion + 1;
  try {
    decode_wal_record(encoded);
    FAIL() << "future-version record must not decode";
  } catch (const SerializationError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported format version"),
              std::string::npos)
        << e.what();
  }
}

TEST(WalCodecTest, UnknownOpRejected) {
  Bytes encoded = encode_wal_record(golden_erase());
  encoded[1] = 9;
  EXPECT_THROW(decode_wal_record(encoded), SerializationError);
}

TEST(WalCodecTest, EveryTruncationThrows) {
  const Bytes encoded = encode_wal_record(golden_insert());
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_THROW(decode_wal_record(ByteView(encoded.data(), len)),
                 SerializationError)
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(WalCodecTest, TrailingBytesRejected) {
  Bytes encoded = encode_wal_record(golden_erase());
  encoded.push_back(0x00);
  EXPECT_THROW(decode_wal_record(encoded), SerializationError);
}

TEST(WalCodecTest, ChainTagIsTrailingGcmTag) {
  Bytes sealed;
  for (int i = 0; i < 64; ++i) sealed.push_back(static_cast<std::uint8_t>(i));
  const WalChainTag tag = chain_tag_of(sealed);
  for (std::size_t i = 0; i < tag.size(); ++i) {
    EXPECT_EQ(tag[i], 64 - tag.size() + i);
  }
}

}  // namespace
}  // namespace speed::store
