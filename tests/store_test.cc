// Tests for the encrypted ResultStore: GET/PUT semantics, blob integrity,
// quota enforcement, LRU eviction, wire dispatch, secure sessions, master
// sync, and sealed snapshots.
#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "store/master_sync.h"
#include "store/result_store.h"
#include "store/store_session.h"

namespace speed::store {
namespace {

using serialize::EntryPayload;
using serialize::GetRequest;
using serialize::GetResponse;
using serialize::PutRequest;
using serialize::PutResponse;
using serialize::PutStatus;
using serialize::SyncRequest;
using serialize::Tag;

sgx::CostModel fast_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  m.epc_page_swap_ns = 0;
  return m;
}

Tag make_tag(std::uint64_t n) {
  Tag t{};
  for (int i = 0; i < 8; ++i) t[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(n >> (8 * i));
  return t;
}

serialize::AppId make_app(std::uint8_t fill) {
  serialize::AppId a;
  a.fill(fill);
  return a;
}

EntryPayload make_entry(std::size_t ct_size = 64, std::uint8_t fill = 0x5a) {
  EntryPayload e;
  e.challenge = Bytes(32, fill);
  e.wrapped_key = Bytes(16, fill);
  e.result_ct = Bytes(ct_size, fill);
  return e;
}

PutRequest make_put(std::uint64_t tag_n, std::size_t ct_size = 64,
                    std::uint8_t app = 0x01) {
  PutRequest put;
  put.tag = make_tag(tag_n);
  put.requester = make_app(app);
  put.entry = make_entry(ct_size, static_cast<std::uint8_t>(tag_n));
  return put;
}

class StoreTest : public ::testing::Test {
 protected:
  StoreTest() : platform_(fast_model()), store_(platform_) {}

  sgx::Platform platform_;
  ResultStore store_;
};

TEST_F(StoreTest, MissThenStoreThenHit) {
  GetRequest get;
  get.tag = make_tag(1);
  EXPECT_FALSE(store_.get(get).found);

  const PutRequest put = make_put(1);
  EXPECT_EQ(store_.put(put).status, PutStatus::kStored);

  const GetResponse hit = store_.get(get);
  ASSERT_TRUE(hit.found);
  EXPECT_EQ(hit.entry, put.entry);

  const auto s = store_.stats();
  EXPECT_EQ(s.get_requests, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST_F(StoreTest, DuplicatePutFirstWriteWins) {
  const PutRequest first = make_put(7, 64);
  PutRequest second = make_put(7, 64);
  second.entry.result_ct = Bytes(64, 0x99);  // different payload, same tag
  EXPECT_EQ(store_.put(first).status, PutStatus::kStored);
  EXPECT_EQ(store_.put(second).status, PutStatus::kAlreadyPresent);

  GetRequest get;
  get.tag = make_tag(7);
  const GetResponse hit = store_.get(get);
  ASSERT_TRUE(hit.found);
  EXPECT_EQ(hit.entry, first.entry) << "first write must win";
}

TEST_F(StoreTest, QuotaEnforcedPerApplication) {
  StoreConfig cfg;
  cfg.per_app_quota_bytes = 150;
  ResultStore store(platform_, cfg);

  EXPECT_EQ(store.put(make_put(1, 100, 0x01)).status, PutStatus::kStored);
  EXPECT_EQ(store.put(make_put(2, 100, 0x01)).status, PutStatus::kQuotaExceeded)
      << "app 0x01 exceeded its quota";
  EXPECT_EQ(store.put(make_put(3, 100, 0x02)).status, PutStatus::kStored)
      << "app 0x02 has its own quota";
  EXPECT_EQ(store.stats().quota_rejections, 1u);
}

TEST_F(StoreTest, LruEvictionUnderCapacity) {
  StoreConfig cfg;
  cfg.max_ciphertext_bytes = 300;
  ResultStore store(platform_, cfg);

  ASSERT_EQ(store.put(make_put(1, 100)).status, PutStatus::kStored);
  ASSERT_EQ(store.put(make_put(2, 100)).status, PutStatus::kStored);
  ASSERT_EQ(store.put(make_put(3, 100)).status, PutStatus::kStored);

  // Touch tag 1 so tag 2 becomes the LRU victim.
  GetRequest get1;
  get1.tag = make_tag(1);
  ASSERT_TRUE(store.get(get1).found);

  ASSERT_EQ(store.put(make_put(4, 100)).status, PutStatus::kStored);
  EXPECT_EQ(store.stats().evictions, 1u);

  GetRequest get2;
  get2.tag = make_tag(2);
  EXPECT_FALSE(store.get(get2).found) << "LRU entry evicted";
  EXPECT_TRUE(store.get(get1).found) << "recently used entry survives";
}

TEST_F(StoreTest, LfuEvictionProtectsHotEntries) {
  StoreConfig cfg;
  cfg.max_ciphertext_bytes = 300;
  cfg.eviction = StoreConfig::Eviction::kLfu;
  ResultStore store(platform_, cfg);

  ASSERT_EQ(store.put(make_put(1, 100)).status, PutStatus::kStored);
  ASSERT_EQ(store.put(make_put(2, 100)).status, PutStatus::kStored);
  ASSERT_EQ(store.put(make_put(3, 100)).status, PutStatus::kStored);

  // Tag 1 is hot (3 hits); tag 2 was touched once *recently*, tag 3 never.
  GetRequest get1;
  get1.tag = make_tag(1);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(store.get(get1).found);
  GetRequest get2;
  get2.tag = make_tag(2);
  ASSERT_TRUE(store.get(get2).found);

  // Under LRU tag 3 (oldest touch) would go; LFU also picks tag 3 here, but
  // after touching 3 once and 2 never again, LFU must still protect 1.
  GetRequest get3;
  get3.tag = make_tag(3);
  ASSERT_TRUE(store.get(get3).found);

  ASSERT_EQ(store.put(make_put(4, 100)).status, PutStatus::kStored);
  EXPECT_TRUE(store.get(get1).found) << "the frequent entry survives LFU";
  // Exactly one of the cold entries was sacrificed.
  const bool has2 = store.get(get2).found;
  const bool has3 = store.get(get3).found;
  EXPECT_TRUE(has2 ^ has3);
}

TEST_F(StoreTest, LfuScanResistance) {
  StoreConfig cfg;
  cfg.max_ciphertext_bytes = 1000;
  cfg.eviction = StoreConfig::Eviction::kLfu;
  ResultStore store(platform_, cfg);

  // One hot entry with many hits.
  ASSERT_EQ(store.put(make_put(100, 200)).status, PutStatus::kStored);
  GetRequest hot;
  hot.tag = make_tag(100);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(store.get(hot).found);

  // A long scan of one-shot entries churns the cache.
  for (std::uint64_t i = 0; i < 50; ++i) {
    store.put(make_put(i, 200));
  }
  EXPECT_TRUE(store.get(hot).found)
      << "LFU keeps the hot entry through a scan; LRU would have evicted it";
}

TEST_F(StoreTest, EvictionReleasesQuota) {
  StoreConfig cfg;
  cfg.max_ciphertext_bytes = 200;
  cfg.per_app_quota_bytes = 1000;
  ResultStore store(platform_, cfg);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(store.put(make_put(i, 100, 0x01)).status, PutStatus::kStored)
        << "eviction must free the evicted entries' quota";
  }
  EXPECT_EQ(store.stats().entries, 2u);
}

TEST_F(StoreTest, OversizedPutRejected) {
  StoreConfig cfg;
  cfg.max_ciphertext_bytes = 100;
  cfg.per_app_quota_bytes = 1u << 30;
  ResultStore store(platform_, cfg);
  EXPECT_EQ(store.put(make_put(1, 200)).status, PutStatus::kRejected);
}

TEST_F(StoreTest, MaxEntriesGuard) {
  StoreConfig cfg;
  cfg.max_entries = 2;
  ResultStore store(platform_, cfg);
  EXPECT_EQ(store.put(make_put(1)).status, PutStatus::kStored);
  EXPECT_EQ(store.put(make_put(2)).status, PutStatus::kStored);
  EXPECT_EQ(store.put(make_put(3)).status, PutStatus::kRejected);
}

TEST_F(StoreTest, WireDispatchRoundTrip) {
  const PutRequest put = make_put(9);
  const Bytes put_resp = store_.handle(serialize::encode_message(put));
  EXPECT_EQ(std::get<PutResponse>(serialize::decode_message(put_resp)).status,
            PutStatus::kStored);

  GetRequest get;
  get.tag = make_tag(9);
  const Bytes get_resp = store_.handle(serialize::encode_message(get));
  const auto decoded = std::get<GetResponse>(serialize::decode_message(get_resp));
  ASSERT_TRUE(decoded.found);
  EXPECT_EQ(decoded.entry, put.entry);
}

TEST_F(StoreTest, WireDispatchRejectsResponsesAsRequests) {
  const Bytes msg = serialize::encode_message(GetResponse{});
  EXPECT_THROW(store_.handle(msg), ProtocolError);
  EXPECT_THROW(store_.handle(as_bytes("garbage")), SerializationError);
}

TEST_F(StoreTest, EcallChargedPerRequest) {
  const auto before = store_.enclave().ecall_count();
  store_.put(make_put(1));
  GetRequest get;
  get.tag = make_tag(1);
  store_.get(get);
  EXPECT_EQ(store_.enclave().ecall_count(), before + 2);
}

TEST_F(StoreTest, TrustedMemoryTracksDictionaryNotBlobs) {
  const std::uint64_t before = platform_.epc().used_bytes();
  // 1 MB ciphertext but tiny metadata: EPC growth must be metadata-sized.
  ASSERT_EQ(store_.put(make_put(1, 1 << 20)).status, PutStatus::kStored);
  const std::uint64_t growth = platform_.epc().used_bytes() - before;
  EXPECT_LT(growth, 4096u) << "ciphertexts must live outside the enclave";
  EXPECT_GT(growth, 0u) << "metadata must be charged";
}

// ------------------------------------------------------------ corruption

TEST_F(StoreTest, HostTamperedBlobDegradesToMiss) {
  // Simulate the host flipping bits in the untrusted arena: the store's
  // trusted digest check must catch it and drop the entry.
  ASSERT_EQ(store_.put(make_put(5, 128)).status, PutStatus::kStored);

  // Reach into the untrusted arena the way a malicious OS would: re-PUT is
  // not possible (first write wins), so corrupt via the snapshot... instead
  // we model corruption by sealing, restoring into a fresh store, and then
  // using the public API only. Direct corruption needs a test hook:
  store_.corrupt_blob_for_testing(make_tag(5));

  GetRequest get;
  get.tag = make_tag(5);
  EXPECT_FALSE(store_.get(get).found);
  EXPECT_EQ(store_.stats().corrupt_blobs, 1u);
  // The poisoned entry is gone; a fresh PUT re-populates it.
  EXPECT_EQ(store_.put(make_put(5, 128)).status, PutStatus::kStored);
}

// ------------------------------------------------------------- sessions

TEST_F(StoreTest, SecureSessionEndToEnd) {
  auto app = platform_.create_enclave("client-app");
  StoreSession session(store_, app->measurement());
  net::SecureChannel client(
      net::derive_channel_key(*app, store_.enclave().measurement()),
      /*is_initiator=*/true);
  auto transport = session.transport();

  const PutRequest put = make_put(11);
  Bytes frame = client.wrap(serialize::encode_message(put));
  auto resp = client.unwrap(transport->round_trip(frame));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(std::get<PutResponse>(serialize::decode_message(*resp)).status,
            PutStatus::kStored);

  GetRequest get;
  get.tag = make_tag(11);
  frame = client.wrap(serialize::encode_message(get));
  resp = client.unwrap(transport->round_trip(frame));
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(std::get<GetResponse>(serialize::decode_message(*resp)).found);
}

TEST_F(StoreTest, SecureSessionRejectsTamperedFrames) {
  auto app = platform_.create_enclave("client-app");
  StoreSession session(store_, app->measurement());
  net::SecureChannel client(
      net::derive_channel_key(*app, store_.enclave().measurement()), true);
  Bytes frame = client.wrap(serialize::encode_message(make_put(1)));
  frame[frame.size() - 1] ^= 1;
  EXPECT_THROW(session.handle_frame(frame), ProtocolError);
}

// ------------------------------------------------------------ master sync

TEST_F(StoreTest, MasterSyncReplicatesHottestEntries) {
  ResultStore master(platform_);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_EQ(master.put(make_put(i)).status, PutStatus::kStored);
  }
  // Heat up tags 3 and 4.
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t i : {3u, 4u}) {
      GetRequest get;
      get.tag = make_tag(i);
      ASSERT_TRUE(master.get(get).found);
    }
  }

  ResultStore replica(platform_);
  const std::size_t inserted = sync_replica_from_master(replica, master, 2);
  EXPECT_EQ(inserted, 2u);
  for (std::uint64_t i : {3u, 4u}) {
    GetRequest get;
    get.tag = make_tag(i);
    EXPECT_TRUE(replica.get(get).found) << "hot entry " << i << " replicated";
  }
  GetRequest cold;
  cold.tag = make_tag(0);
  EXPECT_FALSE(replica.get(cold).found) << "cold entries not replicated";

  // Re-sync is idempotent.
  EXPECT_EQ(sync_replica_from_master(replica, master, 2), 0u);
}

TEST_F(StoreTest, MasterSyncIsQuotaExempt) {
  StoreConfig tight;
  tight.per_app_quota_bytes = 10;  // no app could PUT anything this size
  ResultStore replica(platform_, tight);
  ResultStore master(platform_);
  ASSERT_EQ(master.put(make_put(1, 64)).status, PutStatus::kStored);
  EXPECT_EQ(sync_replica_from_master(replica, master, 8), 1u);
}

// -------------------------------------------------------------- snapshots

TEST_F(StoreTest, SealedSnapshotRestoresIntoSameIdentity) {
  ASSERT_EQ(store_.put(make_put(21, 80)).status, PutStatus::kStored);
  ASSERT_EQ(store_.put(make_put(22, 80)).status, PutStatus::kStored);
  const Bytes snapshot = store_.seal_snapshot();

  ResultStore revived(platform_);  // same measurement, same platform
  ASSERT_TRUE(revived.restore_snapshot(snapshot));
  for (std::uint64_t i : {21u, 22u}) {
    GetRequest get;
    get.tag = make_tag(i);
    EXPECT_TRUE(revived.get(get).found);
  }
}

TEST_F(StoreTest, SnapshotRejectedOnOtherPlatform) {
  ASSERT_EQ(store_.put(make_put(31)).status, PutStatus::kStored);
  const Bytes snapshot = store_.seal_snapshot();

  sgx::Platform other_machine(fast_model());
  ResultStore foreign(other_machine);
  EXPECT_FALSE(foreign.restore_snapshot(snapshot));
}

TEST_F(StoreTest, TamperedSnapshotRejected) {
  ASSERT_EQ(store_.put(make_put(41)).status, PutStatus::kStored);
  Bytes snapshot = store_.seal_snapshot();
  snapshot[snapshot.size() / 2] ^= 1;
  ResultStore revived(platform_);
  EXPECT_FALSE(revived.restore_snapshot(snapshot));
}

// ------------------------------------------------------- sharded store

/// Tag aimed at one shard: shard assignment reads bytes [8, 16), the
/// dictionary hash reads bytes [0, 8) — set both independently.
Tag sharded_tag(std::uint8_t shard, std::uint64_t n) {
  Tag t = make_tag(n);
  t[8] = shard;
  return t;
}

TEST_F(StoreTest, ShardedCrossShardGetPut) {
  StoreConfig cfg;
  cfg.shards = 8;
  ResultStore store(platform_, cfg);
  ASSERT_EQ(store.shard_count(), 8u);

  for (std::uint64_t n = 0; n < 64; ++n) {
    PutRequest put = make_put(n);
    put.tag = sharded_tag(static_cast<std::uint8_t>(n % 8), n);
    ASSERT_EQ(store.put(put).status, PutStatus::kStored) << "tag " << n;
  }
  for (std::uint64_t n = 0; n < 64; ++n) {
    GetRequest get;
    get.tag = sharded_tag(static_cast<std::uint8_t>(n % 8), n);
    EXPECT_TRUE(store.get(get).found) << "tag " << n;
  }
  const auto s = store.stats();
  EXPECT_EQ(s.stored, 64u);
  EXPECT_EQ(s.entries, 64u);
  EXPECT_EQ(s.hits, 64u);
  EXPECT_EQ(s.ciphertext_bytes, 64u * 64u);
}

TEST_F(StoreTest, ShardedEvictionIsPerShard) {
  // Global capacity 800 over 2 shards = 400 per shard. Overflowing shard 0
  // must evict only within shard 0; shard 1's entries are untouched.
  StoreConfig cfg;
  cfg.max_ciphertext_bytes = 800;
  cfg.shards = 2;
  ResultStore store(platform_, cfg);

  for (std::uint64_t n = 0; n < 4; ++n) {
    PutRequest put = make_put(n, 100);
    put.tag = sharded_tag(1, n);
    ASSERT_EQ(store.put(put).status, PutStatus::kStored);
  }
  for (std::uint64_t n = 10; n < 14; ++n) {
    PutRequest put = make_put(n, 100);
    put.tag = sharded_tag(0, n);
    ASSERT_EQ(store.put(put).status, PutStatus::kStored);
  }
  // Shard 0 is now at its 400-byte slice; one more PUT there evicts there.
  PutRequest put = make_put(20, 100);
  put.tag = sharded_tag(0, 20);
  ASSERT_EQ(store.put(put).status, PutStatus::kStored);
  EXPECT_EQ(store.stats().evictions, 1u);
  for (std::uint64_t n = 0; n < 4; ++n) {
    GetRequest get;
    get.tag = sharded_tag(1, n);
    EXPECT_TRUE(store.get(get).found) << "shard 1 must not pay shard 0's rent";
  }
}

TEST_F(StoreTest, ShardedLfuProtectsHotEntriesWithinShard) {
  StoreConfig cfg;
  cfg.max_ciphertext_bytes = 600;  // 300 per shard
  cfg.eviction = StoreConfig::Eviction::kLfu;
  cfg.shards = 2;
  ResultStore store(platform_, cfg);

  for (std::uint64_t n = 0; n < 3; ++n) {
    PutRequest put = make_put(n, 100);
    put.tag = sharded_tag(0, n);
    ASSERT_EQ(store.put(put).status, PutStatus::kStored);
  }
  GetRequest hot;
  hot.tag = sharded_tag(0, 0);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(store.get(hot).found);

  PutRequest put = make_put(9, 100);
  put.tag = sharded_tag(0, 9);
  ASSERT_EQ(store.put(put).status, PutStatus::kStored);
  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_TRUE(store.get(hot).found) << "LFU keeps the hot entry in its shard";
}

TEST_F(StoreTest, ShardedQuotaStaysGloballyExact) {
  // An app spreading PUTs over all shards must still be capped at its one
  // global quota, not shards * quota.
  StoreConfig cfg;
  cfg.per_app_quota_bytes = 350;
  cfg.shards = 8;
  ResultStore store(platform_, cfg);

  for (std::uint64_t n = 0; n < 3; ++n) {
    PutRequest put = make_put(n, 100, 0x01);
    put.tag = sharded_tag(static_cast<std::uint8_t>(n), n);
    ASSERT_EQ(store.put(put).status, PutStatus::kStored);
  }
  PutRequest fourth = make_put(3, 100, 0x01);
  fourth.tag = sharded_tag(3, 3);
  EXPECT_EQ(store.put(fourth).status, PutStatus::kQuotaExceeded)
      << "350-byte quota admits 3x100, not 4x100, regardless of shard spread";
  PutRequest other_app = make_put(4, 100, 0x02);
  other_app.tag = sharded_tag(3, 4);
  EXPECT_EQ(store.put(other_app).status, PutStatus::kStored);
}

TEST_F(StoreTest, SnapshotRestoresAcrossShardCounts) {
  // Snapshots are shard-layout independent: entries re-shard on restore.
  StoreConfig cfg8;
  cfg8.shards = 8;
  ResultStore sharded(platform_, cfg8);
  for (std::uint64_t n = 0; n < 16; ++n) {
    PutRequest put = make_put(n);
    put.tag = sharded_tag(static_cast<std::uint8_t>(n % 8), n);
    ASSERT_EQ(sharded.put(put).status, PutStatus::kStored);
  }
  const Bytes snapshot = sharded.seal_snapshot();

  ResultStore single(platform_);  // shards = 1
  ASSERT_TRUE(single.restore_snapshot(snapshot));
  EXPECT_EQ(single.stats().entries, 16u);
  for (std::uint64_t n = 0; n < 16; ++n) {
    GetRequest get;
    get.tag = sharded_tag(static_cast<std::uint8_t>(n % 8), n);
    EXPECT_TRUE(single.get(get).found) << "tag " << n;
  }
}

}  // namespace
}  // namespace speed::store
