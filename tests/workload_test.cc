// Tests for the synthetic workload generators: determinism, plausibility
// of the generated data, and the Zipf request streams.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "apps/deflate/deflate.h"
#include "workload/stream_corpus.h"
#include "workload/synthetic.h"

namespace speed::workload {
namespace {

TEST(WorkloadTest, ImagesAreDeterministicPerSeed) {
  EXPECT_EQ(synth_image(64, 48, 7), synth_image(64, 48, 7));
  EXPECT_NE(synth_image(64, 48, 7).pixels(), synth_image(64, 48, 8).pixels());
}

TEST(WorkloadTest, ImagesHaveContrast) {
  const auto img = synth_image(96, 96, 3);
  float lo = 1e9f, hi = -1e9f;
  for (const float p : img.pixels()) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
    ASSERT_GE(p, 0.0f);
    ASSERT_LE(p, 1.0f);
  }
  EXPECT_GT(hi - lo, 0.3f) << "images need structure for SIFT";
}

TEST(WorkloadTest, TextIsCompressibleLikeProse) {
  const std::string text = synth_text(100000, 5);
  EXPECT_EQ(text.size(), 100000u);
  const Bytes compressed = deflate::compress(as_bytes(text));
  const double ratio = static_cast<double>(text.size()) / compressed.size();
  EXPECT_GT(ratio, 2.5) << "prose-like text compresses ~3-4x";
  EXPECT_LT(ratio, 20.0) << "but is not degenerate";
}

TEST(WorkloadTest, TextDeterministicPerSeed) {
  EXPECT_EQ(synth_text(1000, 1), synth_text(1000, 1));
  EXPECT_NE(synth_text(1000, 1), synth_text(1000, 2));
}

TEST(WorkloadTest, WebPagesHaveWords) {
  const std::string page = synth_web_page(2000, 9);
  EXPECT_GE(page.size(), 2000u);
  EXPECT_NE(page.find("title:"), std::string::npos);
}

TEST(WorkloadTest, RulesetShapes) {
  const auto rules = synth_ruleset(500, 21, 0.2);
  ASSERT_EQ(rules.size(), 500u);
  std::set<std::uint32_t> ids;
  std::size_t with_pcre = 0;
  for (const auto& r : rules) {
    ids.insert(r.id);
    EXPECT_FALSE(r.contents.empty());
    for (const auto& c : r.contents) EXPECT_GE(c.size(), 6u);
    with_pcre += r.pcre.has_value();
  }
  EXPECT_EQ(ids.size(), 500u) << "ids are unique";
  EXPECT_GT(with_pcre, 50u);
  EXPECT_LT(with_pcre, 200u);
}

TEST(WorkloadTest, PacketTraceShapes) {
  const auto rules = synth_ruleset(20, 23);
  const auto trace = synth_packet_trace(200, 300, rules, 0.25, 29);
  ASSERT_EQ(trace.size(), 200u);
  for (const auto& p : trace) {
    EXPECT_GE(p.payload.size(), 100u);
    EXPECT_TRUE(p.protocol == 6 || p.protocol == 17);
  }
}

TEST(WorkloadTest, ZipfStreamIsSkewed) {
  const auto stream = zipf_request_stream(100, 20000, 1.0, 31);
  ASSERT_EQ(stream.size(), 20000u);
  std::vector<std::size_t> counts(100, 0);
  for (const auto i : stream) {
    ASSERT_LT(i, 100u);
    ++counts[i];
  }
  EXPECT_GT(counts[0], counts[50] + counts[51]) << "head is hot";
  // Duplicate fraction is what makes dedup worthwhile: >90% of a skewed
  // stream over 100 items of 20k requests are repeats.
  const std::size_t distinct =
      static_cast<std::size_t>(std::count_if(counts.begin(), counts.end(),
                                             [](std::size_t c) { return c > 0; }));
  EXPECT_GT(stream.size() - distinct, stream.size() * 9 / 10);
}

TEST(StreamCorpusTest, BlobsAreDeterministicPerSeed) {
  const StreamCorpusConfig config;
  EXPECT_EQ(synth_stream_blob(config, 11), synth_stream_blob(config, 11));
  EXPECT_NE(synth_stream_blob(config, 11), synth_stream_blob(config, 12));
  EXPECT_NE(synth_stream_blob(config, 11, 0), synth_stream_blob(config, 11, 1));
  EXPECT_EQ(synth_stream_blob(config, 11).size(), config.blob_bytes);
}

TEST(StreamCorpusTest, SameSeedBlobsShareBuildingBlocks) {
  // Two blobs from the same seed draw from one Zipf block pool, so large
  // runs of bytes recur across them — the cross-blob dedup opportunity.
  StreamCorpusConfig config;
  config.universe = 8;  // small pool: overlap is near-certain
  const Bytes a = synth_stream_blob(config, 21, 0);
  const Bytes b = synth_stream_blob(config, 21, 1);
  std::set<Bytes> blocks_a;
  for (std::size_t off = 0; off + config.block_bytes <= a.size();
       off += config.block_bytes) {
    blocks_a.insert(Bytes(a.begin() + off, a.begin() + off + config.block_bytes));
  }
  std::size_t shared = 0;
  for (std::size_t off = 0; off + config.block_bytes <= b.size();
       off += config.block_bytes) {
    shared += blocks_a.count(
        Bytes(b.begin() + off, b.begin() + off + config.block_bytes));
  }
  EXPECT_GT(shared, 0u);
}

TEST(StreamCorpusTest, EditsPerturbSizeOnlySlightly) {
  const Bytes base = synth_stream_blob({}, 31);
  const Bytes edited = edit_stream_blob(base, 4, 64, 5);
  EXPECT_EQ(edit_stream_blob(base, 4, 64, 5), edited);  // seed-deterministic
  EXPECT_NE(edited, base);
  const auto diff = edited.size() > base.size() ? edited.size() - base.size()
                                                : base.size() - edited.size();
  EXPECT_LT(diff, 4 * 2 * 64);  // bounded by edit count * jittered span
}

TEST(StreamCorpusTest, ShiftPrependsExactly) {
  const Bytes base = synth_stream_blob({}, 41);
  const Bytes shifted = shift_stream_blob(base, 100, 6);
  ASSERT_EQ(shifted.size(), base.size() + 100);
  EXPECT_TRUE(std::equal(base.begin(), base.end(), shifted.begin() + 100));
}

TEST(StreamCorpusTest, VersionChainsEvolveGradually) {
  StreamCorpusConfig config;
  config.blob_bytes = 64 * 1024;
  const auto chain = stream_version_chain(config, 5, 2, 64, 51);
  ASSERT_EQ(chain.size(), 5u);
  EXPECT_EQ(chain[0], synth_stream_blob(config, 51));
  for (std::size_t v = 1; v < chain.size(); ++v) {
    EXPECT_NE(chain[v], chain[v - 1]);
  }
  EXPECT_TRUE(stream_version_chain(config, 0, 2, 64, 51).empty());
}

}  // namespace
}  // namespace speed::workload
