// Tests for the transport and the attested secure channel.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "net/channel.h"
#include "net/secure_channel.h"

namespace speed::net {
namespace {

sgx::CostModel fast_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  return m;
}

TEST(LoopbackTransportTest, DeliversAndReturns) {
  LoopbackTransport transport(
      [](ByteView req) { return concat(to_bytes("echo:"), req); });
  const Bytes resp = transport.round_trip(as_bytes("ping"));
  EXPECT_EQ(resp, to_bytes("echo:ping"));
}

TEST(LoopbackTransportTest, SerializesConcurrentCallers) {
  int in_flight = 0;
  int max_in_flight = 0;
  LoopbackTransport transport([&](ByteView req) {
    ++in_flight;
    max_in_flight = std::max(max_in_flight, in_flight);
    --in_flight;
    return Bytes(req.begin(), req.end());
  });
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 100; ++j) transport.round_trip(as_bytes("x"));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(max_in_flight, 1) << "handler must never run concurrently";
}

TEST(LoopbackTransportTest, LatencyInjection) {
  LoopbackTransport transport([](ByteView) { return Bytes{}; },
                              /*one_way_ns=*/200000);
  Stopwatch sw;
  transport.round_trip({});
  EXPECT_GE(sw.elapsed_ns(), 350000u);
}

TEST(ChannelKeyTest, BothEndpointsDeriveSameKey) {
  sgx::Platform platform(fast_model());
  auto app = platform.create_enclave("app");
  auto store = platform.create_enclave("store");
  const secret::Buffer k1 = derive_channel_key(*app, store->measurement());
  const secret::Buffer k2 = derive_channel_key(*store, app->measurement());
  EXPECT_TRUE(ct_equal(k1, k2));
  EXPECT_EQ(k1.size(), 16u);
}

TEST(ChannelKeyTest, DifferentPairsDifferentKeys) {
  sgx::Platform platform(fast_model());
  auto a = platform.create_enclave("a");
  auto b = platform.create_enclave("b");
  auto c = platform.create_enclave("c");
  EXPECT_FALSE(ct_equal(derive_channel_key(*a, b->measurement()),
                        derive_channel_key(*a, c->measurement())));
}

TEST(ChannelKeyTest, CrossPlatformKeysDiffer) {
  sgx::Platform p1(fast_model()), p2(fast_model());
  auto a1 = p1.create_enclave("app");
  auto a2 = p2.create_enclave("app");
  const auto store_meas = sgx::measure_identity("store");
  EXPECT_FALSE(ct_equal(derive_channel_key(*a1, store_meas),
                        derive_channel_key(*a2, store_meas)))
      << "channel keys are rooted in the platform";
}

class SecureChannelTest : public ::testing::Test {
 protected:
  SecureChannelTest()
      : platform_(fast_model()),
        app_(platform_.create_enclave("app")),
        store_(platform_.create_enclave("store")),
        client_(derive_channel_key(*app_, store_->measurement()), true),
        server_(derive_channel_key(*store_, app_->measurement()), false) {}

  sgx::Platform platform_;
  std::unique_ptr<sgx::Enclave> app_;
  std::unique_ptr<sgx::Enclave> store_;
  SecureChannel client_;
  SecureChannel server_;
};

TEST_F(SecureChannelTest, BidirectionalRoundTrip) {
  const Bytes frame = client_.wrap(as_bytes("GET tag"));
  const auto req = server_.unwrap(frame);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(*req, to_bytes("GET tag"));

  const Bytes reply_frame = server_.wrap(as_bytes("FOUND entry"));
  const auto resp = client_.unwrap(reply_frame);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(*resp, to_bytes("FOUND entry"));
}

TEST_F(SecureChannelTest, ManyMessagesKeepOrder) {
  for (int i = 0; i < 50; ++i) {
    const std::string msg = "message-" + std::to_string(i);
    const auto out = server_.unwrap(client_.wrap(as_bytes(msg)));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, to_bytes(msg));
  }
  EXPECT_EQ(client_.sent(), 50u);
  EXPECT_EQ(server_.received(), 50u);
}

TEST_F(SecureChannelTest, ReplayRejected) {
  const Bytes frame = client_.wrap(as_bytes("once"));
  ASSERT_TRUE(server_.unwrap(frame).has_value());
  EXPECT_FALSE(server_.unwrap(frame).has_value()) << "replay must fail";
}

TEST_F(SecureChannelTest, ReorderRejected) {
  const Bytes f0 = client_.wrap(as_bytes("first"));
  const Bytes f1 = client_.wrap(as_bytes("second"));
  EXPECT_FALSE(server_.unwrap(f1).has_value()) << "skipping seq 0 must fail";
  EXPECT_TRUE(server_.unwrap(f0).has_value());
  EXPECT_TRUE(server_.unwrap(f1).has_value());
}

TEST_F(SecureChannelTest, TamperedFrameRejected) {
  Bytes frame = client_.wrap(as_bytes("payload"));
  frame[frame.size() - 1] ^= 1;
  EXPECT_FALSE(server_.unwrap(frame).has_value());
}

TEST_F(SecureChannelTest, WrongDirectionRejected) {
  // A frame the client sent cannot be mistaken for a server frame.
  const Bytes frame = client_.wrap(as_bytes("to-server"));
  EXPECT_FALSE(client_.unwrap(frame).has_value());
}

TEST_F(SecureChannelTest, ForeignKeyRejected) {
  auto other = platform_.create_enclave("other");
  SecureChannel eavesdropper(derive_channel_key(*other, app_->measurement()),
                             false);
  const Bytes frame = client_.wrap(as_bytes("secret"));
  EXPECT_FALSE(eavesdropper.unwrap(frame).has_value());
}

TEST_F(SecureChannelTest, GarbageFrameRejected) {
  EXPECT_FALSE(server_.unwrap(as_bytes("not a frame")).has_value());
  EXPECT_FALSE(server_.unwrap({}).has_value());
}

}  // namespace
}  // namespace speed::net
