// Tests for the TCP deployment: framing, the store server, attested
// connections over real sockets, and full dedup flows across "processes".
#include <gtest/gtest.h>

#include <thread>

#include "runtime/speed.h"
#include "store/tcp_server.h"

namespace speed {
namespace {

sgx::CostModel fast_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  return m;
}

TEST(FramingTest, SendRecvAcrossSocketPair) {
  net::TcpListener listener(0);
  net::FramedSocket client = net::tcp_connect("127.0.0.1", listener.port());
  net::FramedSocket server = listener.accept();

  client.send_frame(as_bytes("hello over tcp"));
  EXPECT_EQ(server.recv_frame(), to_bytes("hello over tcp"));

  server.send_frame({});
  EXPECT_EQ(client.recv_frame(), Bytes{});

  const Bytes big = Bytes(1 << 20, 0x5a);
  client.send_frame(big);
  EXPECT_EQ(server.recv_frame(), big);
}

TEST(FramingTest, OrderlyEofReportsNullopt) {
  net::TcpListener listener(0);
  net::FramedSocket client = net::tcp_connect("127.0.0.1", listener.port());
  net::FramedSocket server = listener.accept();
  client.close();
  EXPECT_FALSE(server.try_recv_frame().has_value());
  EXPECT_THROW(server.recv_frame(), net::TcpError);
}

TEST(FramingTest, MidFrameEofThrows) {
  net::TcpListener listener(0);
  net::FramedSocket client = net::tcp_connect("127.0.0.1", listener.port());
  net::FramedSocket server = listener.accept();
  // Announce 100 bytes but deliver none.
  const Bytes header = {100, 0, 0, 0};
  client.send_frame({});  // first a real frame so the length bytes below are a new frame
  ASSERT_TRUE(server.try_recv_frame().has_value());
  // Raw length prefix without payload, then close.
  // (Reach under the framing by sending a frame whose payload *is* a bare
  // header: simplest is to close mid-frame via a partial send, which the
  // framed API cannot produce — so emulate with a tiny frame and EOF.)
  client.close();
  EXPECT_FALSE(server.try_recv_frame().has_value());
  (void)header;
}

TEST(TcpStoreTest, EndToEndDedupOverSockets) {
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  store::StoreTcpServer server(result_store, 0);

  auto enclave = platform.create_enclave("tcp-app");
  auto conn = store::connect_tcp_app(*enclave,
                                     result_store.enclave().measurement(),
                                     "127.0.0.1", server.port());
  runtime::DedupRuntime rt(*enclave, std::move(conn.session_key), std::move(conn.transport));
  rt.libraries().register_library("lib", "1", as_bytes("code"));

  int executions = 0;
  runtime::Deduplicable<Bytes(const Bytes&)> f(
      rt, {"lib", "1", "f"}, [&](const Bytes& in) {
        ++executions;
        return concat(in, as_bytes("+tcp"));
      });

  const Bytes r1 = f(to_bytes("payload"));
  rt.flush();
  const Bytes r2 = f(to_bytes("payload"));
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, to_bytes("payload+tcp"));
  EXPECT_EQ(executions, 1);
  EXPECT_EQ(server.connections_accepted(), 1u);
}

TEST(TcpStoreTest, TwoClientsShareResults) {
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  store::StoreTcpServer server(result_store, 0);

  auto make_runtime = [&](const std::string& id) {
    auto enclave = platform.create_enclave(id);
    auto conn = store::connect_tcp_app(
        *enclave, result_store.enclave().measurement(), "127.0.0.1",
        server.port());
    auto rt = std::make_unique<runtime::DedupRuntime>(
        *enclave, std::move(conn.session_key), std::move(conn.transport));
    rt->libraries().register_library("lib", "1", as_bytes("code"));
    return std::make_pair(std::move(enclave), std::move(rt));
  };

  auto [enc_a, rt_a] = make_runtime("client-a");
  auto [enc_b, rt_b] = make_runtime("client-b");

  int exec_a = 0, exec_b = 0;
  runtime::Deduplicable<Bytes(const Bytes&)> fa(
      *rt_a, {"lib", "1", "f"}, [&](const Bytes& in) {
        ++exec_a;
        return in;
      });
  runtime::Deduplicable<Bytes(const Bytes&)> fb(
      *rt_b, {"lib", "1", "f"}, [&](const Bytes& in) {
        ++exec_b;
        return in;
      });

  fa(to_bytes("shared"));
  rt_a->flush();
  fb(to_bytes("shared"));
  EXPECT_EQ(exec_a, 1);
  EXPECT_EQ(exec_b, 0) << "cross-application dedup across TCP clients";
  EXPECT_EQ(server.connections_accepted(), 2u);
}

TEST(TcpStoreTest, ImpostorStoreRejectedByClient) {
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  store::StoreTcpServer server(result_store, 0);

  auto enclave = platform.create_enclave("paranoid-app");
  EXPECT_THROW(store::connect_tcp_app(*enclave,
                                      sgx::measure_identity("some-other-store"),
                                      "127.0.0.1", server.port()),
               Error)
      << "client pins the store measurement";
}

TEST(TcpStoreTest, GarbageHelloCountsAsRejected) {
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  store::StoreTcpServer server(result_store, 0);

  net::FramedSocket raw = net::tcp_connect("127.0.0.1", server.port());
  raw.send_frame(as_bytes("not a handshake"));
  // Server drops the connection; our next read sees EOF.
  EXPECT_FALSE(raw.try_recv_frame().has_value());
  // Give the worker a moment to record the rejection.
  for (int i = 0; i < 100 && server.connections_rejected() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.connections_rejected(), 1u);
  EXPECT_EQ(server.connections_accepted(), 0u);
}

TEST(TcpStoreTest, ServerStopsCleanlyWithLiveClients) {
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  auto server = std::make_unique<store::StoreTcpServer>(result_store, 0);

  auto enclave = platform.create_enclave("app");
  auto conn = store::connect_tcp_app(*enclave,
                                     result_store.enclave().measurement(),
                                     "127.0.0.1", server->port());
  server->stop();
  server.reset();
  // The client's next request fails with a transport error, not a hang.
  EXPECT_THROW(conn.transport->round_trip(as_bytes("x")), net::TcpError);
}

TEST(TcpTest, ConnectToClosedPortFails) {
  std::uint16_t dead_port;
  {
    net::TcpListener listener(0);
    dead_port = listener.port();
  }
  EXPECT_THROW(net::tcp_connect("127.0.0.1", dead_port), net::TcpError);
}

}  // namespace
}  // namespace speed
