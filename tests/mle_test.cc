// Tests for the computation-MLE core: tag derivation and the RCE result
// cipher, including the Fig. 3 verification semantics ("wrong code or wrong
// input => cannot decrypt") and the basic single-key ablation scheme.
#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "mle/rce.h"
#include "mle/tag.h"

namespace speed::mle {
namespace {

FunctionIdentity make_fn(std::string_view family = "zlib",
                         std::string_view version = "1.2.11",
                         std::string_view sig = "bytes deflate(bytes)",
                         std::string_view code = "deflate-code-bytes") {
  FunctionIdentity fn;
  fn.descriptor = {std::string(family), std::string(version), std::string(sig)};
  fn.code_measurement = sgx::measure_library(family, version, as_bytes(code));
  return fn;
}

TEST(TagTest, DeterministicAcrossCalls) {
  const FunctionIdentity fn = make_fn();
  const Bytes input = to_bytes("input data");
  EXPECT_EQ(derive_tag(fn, input), derive_tag(fn, input));
}

TEST(TagTest, DiffersByInput) {
  const FunctionIdentity fn = make_fn();
  EXPECT_NE(derive_tag(fn, as_bytes("input-a")),
            derive_tag(fn, as_bytes("input-b")));
}

TEST(TagTest, DiffersByFunctionCode) {
  const Bytes input = to_bytes("same input");
  EXPECT_NE(derive_tag(make_fn("zlib", "1.2.11", "f", "code-v1"), input),
            derive_tag(make_fn("zlib", "1.2.11", "f", "code-v2"), input))
      << "same name, different code must not deduplicate";
}

TEST(TagTest, DiffersBySignature) {
  const Bytes input = to_bytes("same input");
  EXPECT_NE(derive_tag(make_fn("zlib", "1.2.11", "deflate"), input),
            derive_tag(make_fn("zlib", "1.2.11", "inflate"), input));
}

TEST(TagTest, FieldBoundariesAreUnambiguous) {
  // (func="ab", input="c") vs (func="a", input="bc") style splits.
  FunctionIdentity f1 = make_fn("lib", "1", "sig");
  const Tag t = derive_tag(f1, as_bytes("ab"));
  EXPECT_FALSE(ct_equal(derive_secondary_key(f1, as_bytes("a"), as_bytes("b")),
                        ByteView(t.data(), t.size())))
      << "tags and secondary keys are domain-separated";
}

TEST(TagTest, MidstateMatchesNaiveDoubleHash) {
  // ComputationContext absorbs (func, m) once and forks the SHA-256 midstate
  // for t and h. The result must be identical to hashing everything from
  // scratch per derivation — with the same length-prefixed encoding.
  const FunctionIdentity fn = make_fn();
  crypto::Drbg drbg(to_bytes("midstate"));
  for (const std::size_t size : {std::size_t{0}, std::size_t{1},
                                 std::size_t{55}, std::size_t{64},
                                 std::size_t{1000}, std::size_t{1 << 16}}) {
    const Bytes input = drbg.bytes(size);
    const Bytes challenge = drbg.bytes(kChallengeSize);

    const auto absorb = [](crypto::Sha256& h, ByteView part) {
      std::uint8_t len[4];
      const auto n = static_cast<std::uint32_t>(part.size());
      for (int i = 0; i < 4; ++i) {
        len[i] = static_cast<std::uint8_t>(n >> (8 * i));
      }
      h.update(ByteView(len, 4));
      h.update(part);
    };
    crypto::Sha256 naive_tag;
    naive_tag.update(as_bytes("speed-comp-v2"));
    absorb(naive_tag, fn.unique_value());
    absorb(naive_tag, input);
    absorb(naive_tag, as_bytes("tag"));
    crypto::Sha256 naive_skey;
    naive_skey.update(as_bytes("speed-comp-v2"));
    absorb(naive_skey, fn.unique_value());
    absorb(naive_skey, input);
    absorb(naive_skey, as_bytes("skey"));
    absorb(naive_skey, challenge);

    const ComputationContext ctx(fn, input);
    EXPECT_EQ(ctx.tag(), naive_tag.finish()) << "input size " << size;
    const auto naive_h = naive_skey.finish();
    EXPECT_TRUE(ct_equal(ctx.secondary_key(challenge),
                         ByteView(naive_h.data(), naive_h.size())))
        << "input size " << size;
    // Forking must not consume the midstate: derive repeatedly.
    EXPECT_EQ(ctx.tag(), derive_tag(fn, input));
    EXPECT_TRUE(ct_equal(ctx.secondary_key(challenge),
                         derive_secondary_key(fn, input, challenge)));
  }
}

TEST(RceTest, ContextPathMatchesFreeFunctions) {
  // The ctx-based protect/recover (one pass over m) interoperates with the
  // derive-internally overloads both ways.
  crypto::Drbg drbg(to_bytes("ctx"));
  const FunctionIdentity fn = make_fn();
  const Bytes input = to_bytes("shared input");
  const Bytes result = to_bytes("shared result");
  const ComputationContext ctx(fn, input);

  const auto from_ctx = ResultCipher::protect(ctx, result, drbg);
  const auto via_free = ResultCipher::recover(fn, input, from_ctx);
  ASSERT_TRUE(via_free.has_value());
  EXPECT_TRUE(ct_equal(*via_free, ByteView(result)));

  const auto from_free = ResultCipher::protect(fn, input, result, drbg);
  const auto via_ctx = ResultCipher::recover(ctx, from_free);
  ASSERT_TRUE(via_ctx.has_value());
  EXPECT_TRUE(ct_equal(*via_ctx, ByteView(result)));
}

TEST(TagTest, SecondaryKeyDependsOnChallenge) {
  const FunctionIdentity fn = make_fn();
  const Bytes input = to_bytes("m");
  EXPECT_FALSE(ct_equal(derive_secondary_key(fn, input, as_bytes("r1")),
                        derive_secondary_key(fn, input, as_bytes("r2"))));
  EXPECT_TRUE(ct_equal(derive_secondary_key(fn, input, as_bytes("r1")),
                       derive_secondary_key(fn, input, as_bytes("r1"))));
}

// ------------------------------------------------------------- ResultCipher

TEST(RceTest, ProtectRecoverRoundTrip) {
  crypto::Drbg drbg(to_bytes("rce-test"));
  const FunctionIdentity fn = make_fn();
  const Bytes input = to_bytes("the input");
  const Bytes result = to_bytes("the computed result");
  const auto entry = ResultCipher::protect(fn, input, result, drbg);
  const auto recovered = ResultCipher::recover(fn, input, entry);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(ct_equal(*recovered, ByteView(result)));
}

TEST(RceTest, CrossApplicationRecovery) {
  // Two independent "applications" (different DRBGs) with the same code and
  // input: whoever stores first, the other recovers. No shared key involved.
  crypto::Drbg drbg_a(to_bytes("app-a"));
  const FunctionIdentity fn = make_fn();
  const Bytes input = to_bytes("shared input");
  const Bytes result = to_bytes("shared result");
  const auto entry = ResultCipher::protect(fn, input, result, drbg_a);

  // App B recreates the identity from its own descriptor + library code.
  const FunctionIdentity fn_b = make_fn();
  const auto recovered = ResultCipher::recover(fn_b, input, entry);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(ct_equal(*recovered, ByteView(result)));
}

TEST(RceTest, WrongInputCannotDecrypt) {
  crypto::Drbg drbg(to_bytes("seed"));
  const FunctionIdentity fn = make_fn();
  const auto entry =
      ResultCipher::protect(fn, as_bytes("input-1"), as_bytes("res"), drbg);
  EXPECT_FALSE(ResultCipher::recover(fn, as_bytes("input-2"), entry).has_value())
      << "Fig. 3: without m, decryption must return bot";
}

TEST(RceTest, WrongCodeCannotDecrypt) {
  crypto::Drbg drbg(to_bytes("seed"));
  const Bytes input = to_bytes("same input");
  const auto entry = ResultCipher::protect(make_fn("zlib", "1.2.11", "f", "v1"),
                                           input, as_bytes("res"), drbg);
  EXPECT_FALSE(ResultCipher::recover(make_fn("zlib", "1.2.11", "f", "v2"),
                                     input, entry)
                   .has_value())
      << "Fig. 3: without func's code, decryption must return bot";
}

TEST(RceTest, TamperedPayloadRejected) {
  crypto::Drbg drbg(to_bytes("seed"));
  const FunctionIdentity fn = make_fn();
  const Bytes input = to_bytes("in");
  const auto entry = ResultCipher::protect(fn, input, as_bytes("result"), drbg);

  auto tampered_ct = entry;
  tampered_ct.result_ct[tampered_ct.result_ct.size() / 2] ^= 1;
  EXPECT_FALSE(ResultCipher::recover(fn, input, tampered_ct).has_value());

  auto tampered_r = entry;
  tampered_r.challenge[0] ^= 1;
  EXPECT_FALSE(ResultCipher::recover(fn, input, tampered_r).has_value());

  auto tampered_k = entry;
  tampered_k.wrapped_key[0] ^= 1;
  EXPECT_FALSE(ResultCipher::recover(fn, input, tampered_k).has_value());

  auto bad_key_len = entry;
  bad_key_len.wrapped_key.pop_back();
  EXPECT_FALSE(ResultCipher::recover(fn, input, bad_key_len).has_value());
}

TEST(RceTest, PayloadIsRandomizedPerStore) {
  // RCE is randomized: protecting the same computation twice yields
  // different ciphertexts and challenges (only the *tag* coincides).
  crypto::Drbg drbg(to_bytes("seed"));
  const FunctionIdentity fn = make_fn();
  const Bytes input = to_bytes("in"), result = to_bytes("res");
  const auto e1 = ResultCipher::protect(fn, input, result, drbg);
  const auto e2 = ResultCipher::protect(fn, input, result, drbg);
  EXPECT_NE(e1.challenge, e2.challenge);
  EXPECT_NE(e1.wrapped_key, e2.wrapped_key);
  EXPECT_NE(e1.result_ct, e2.result_ct);
  EXPECT_EQ(derive_tag(fn, input), derive_tag(fn, input));
}

TEST(RceTest, SplitPhaseMatchesOneShot) {
  crypto::Drbg drbg(to_bytes("split"));
  const FunctionIdentity fn = make_fn();
  const Bytes input = to_bytes("input");
  const Bytes result = to_bytes("result");

  const auto wk = ResultCipher::generate_key(fn, input, drbg);
  EXPECT_EQ(wk.key.size(), kResultKeySize);
  EXPECT_EQ(wk.challenge.size(), kChallengeSize);

  // The split-phase helpers speak secret types end to end; the test reveals
  // the challenge like the runtime's payload boundary would.
  const secret::Buffer recovered_key = ResultCipher::recover_key(
      fn, input,
      wk.challenge.reveal_for(secret::Purpose::of("test_vector_check")),
      wk.wrapped_key);
  EXPECT_TRUE(ct_equal(recovered_key, wk.key)) << "k = [k] XOR h round-trips";

  const Tag tag = derive_tag(fn, input);
  const Bytes ct = ResultCipher::encrypt_result(tag, wk.key, result, drbg);
  const auto pt = ResultCipher::decrypt_result(tag, recovered_key, ct);
  ASSERT_TRUE(pt.has_value());
  EXPECT_TRUE(ct_equal(*pt, ByteView(result)));

  // The tag-aware one-shot paths agree with the derive-internally ones.
  const auto entry = ResultCipher::protect(tag, fn, input, result, drbg);
  const auto rec = ResultCipher::recover(tag, fn, input, entry);
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(ct_equal(*rec, ByteView(result)));
  const auto rec2 = ResultCipher::recover(fn, input, entry);
  ASSERT_TRUE(rec2.has_value());
  EXPECT_TRUE(ct_equal(*rec2, *rec));
}

TEST(RceTest, EntryBoundToTagNotTransplantable) {
  // A malicious store cannot serve computation B's payload for computation
  // A's tag: the AEAD is bound to the tag, and the secondary key differs.
  crypto::Drbg drbg(to_bytes("seed"));
  const FunctionIdentity fn = make_fn();
  const auto entry_b =
      ResultCipher::protect(fn, as_bytes("input-b"), as_bytes("res-b"), drbg);
  EXPECT_FALSE(ResultCipher::recover(fn, as_bytes("input-a"), entry_b).has_value());
}

// Property sweep: round trip across result sizes including empty and
// block-boundary cases.
class RceSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RceSizeSweep, RoundTripsAtSize) {
  crypto::Drbg drbg(to_bytes("sweep"));
  const FunctionIdentity fn = make_fn();
  const Bytes input = drbg.bytes(64);
  const Bytes result = drbg.bytes(GetParam());
  const auto entry = ResultCipher::protect(fn, input, result, drbg);
  const auto recovered = ResultCipher::recover(fn, input, entry);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(ct_equal(*recovered, ByteView(result)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RceSizeSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 255, 4096, 65537));

// -------------------------------------------------------- BasicResultCipher

TEST(BasicSchemeTest, RoundTripWithSharedKey) {
  crypto::Drbg drbg(to_bytes("basic"));
  const BasicResultCipher cipher(drbg.bytes(16));
  const FunctionIdentity fn = make_fn();
  const Bytes input = to_bytes("in"), result = to_bytes("res");
  const auto entry = cipher.protect(fn, input, result, drbg);
  EXPECT_TRUE(entry.challenge.empty());
  const auto recovered = cipher.recover(fn, input, entry);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(ct_equal(*recovered, ByteView(result)));
}

TEST(BasicSchemeTest, SinglePointOfCompromise) {
  // The §III-B discussion: any holder of the system key decrypts everything,
  // even without owning the computation. This is exactly what the RCE
  // scheme prevents.
  crypto::Drbg drbg(to_bytes("compromise"));
  const Bytes system_key = drbg.bytes(16);
  const BasicResultCipher victim(system_key);
  const FunctionIdentity fn = make_fn();
  const auto entry = victim.protect(fn, as_bytes("in"), as_bytes("res"), drbg);

  const BasicResultCipher attacker(system_key);  // stolen key, no computation
  EXPECT_TRUE(attacker.recover(fn, as_bytes("in"), entry).has_value());
}

TEST(BasicSchemeTest, DifferentSystemKeyFails) {
  crypto::Drbg drbg(to_bytes("basic2"));
  const BasicResultCipher a(drbg.bytes(16));
  const BasicResultCipher b(drbg.bytes(16));
  const FunctionIdentity fn = make_fn();
  const auto entry = a.protect(fn, as_bytes("in"), as_bytes("res"), drbg);
  EXPECT_FALSE(b.recover(fn, as_bytes("in"), entry).has_value());
}

TEST(BasicSchemeTest, RejectsRcePayloads) {
  crypto::Drbg drbg(to_bytes("basic3"));
  const BasicResultCipher cipher(drbg.bytes(16));
  const FunctionIdentity fn = make_fn();
  const auto rce_entry =
      ResultCipher::protect(fn, as_bytes("in"), as_bytes("res"), drbg);
  EXPECT_FALSE(cipher.recover(fn, as_bytes("in"), rce_entry).has_value());
}

}  // namespace
}  // namespace speed::mle
