// Tests for DedupRuntime and the Deduplicable<> API: the full Algorithm 1/2
// routine end-to-end against a live ResultStore, cross-application
// deduplication, poisoning resilience, async PUT, the basic-scheme ablation,
// and dedup transparency properties.
#include <gtest/gtest.h>

#include <atomic>

#include "common/rng.h"
#include "runtime/speed.h"

namespace speed::runtime {
namespace {

sgx::CostModel fast_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  m.epc_page_swap_ns = 0;
  return m;
}

/// One application wired to a store through the attested handshake:
/// enclave + server session + runtime.
struct App {
  App(sgx::Platform& platform, store::ResultStore& store,
      const std::string& identity, RuntimeConfig config = RuntimeConfig{})
      : enclave(platform.create_enclave(identity)),
        connection(store::connect_app(store, *enclave)),
        rt(*enclave, std::move(connection.session_key), std::move(connection.transport),
           std::move(config)) {
    rt.libraries().register_library("testlib", "1.0", as_bytes("testlib-code"));
  }

  std::unique_ptr<sgx::Enclave> enclave;
  store::AppConnection connection;
  DedupRuntime rt;
};

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : platform_(fast_model()), store_(platform_) {}

  sgx::Platform platform_;
  store::ResultStore store_;
};

serialize::FunctionDescriptor desc(const std::string& sig = "bytes f(bytes)") {
  return {"testlib", "1.0", sig};
}

/// Config for tests that assert on per-call store traffic (hit counters,
/// transition counts): the in-enclave result cache would serve the repeats
/// locally and starve those assertions.
RuntimeConfig store_path_config() {
  RuntimeConfig cfg;
  cfg.local_cache = false;
  return cfg;
}

TEST_F(RuntimeTest, MissComputesHitReuses) {
  App app(platform_, store_, "app", store_path_config());
  std::atomic<int> executions{0};
  Deduplicable<Bytes(const Bytes&)> f(app.rt, desc(),
                                      [&](const Bytes& in) {
                                        ++executions;
                                        Bytes out = in;
                                        out.push_back(0xff);
                                        return out;
                                      });
  const Bytes input = to_bytes("hello");
  const Bytes r1 = f(input);
  EXPECT_FALSE(f.last_was_deduplicated());
  app.rt.flush();  // let the async PUT land

  const Bytes r2 = f(input);
  EXPECT_TRUE(f.last_was_deduplicated());
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(executions.load(), 1) << "second call must not re-execute";

  const auto s = app.rt.stats();
  EXPECT_EQ(s.calls, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
}

TEST_F(RuntimeTest, DifferentInputsAreDistinctComputations) {
  App app(platform_, store_, "app");
  std::atomic<int> executions{0};
  Deduplicable<Bytes(const Bytes&)> f(app.rt, desc(), [&](const Bytes& in) {
    ++executions;
    return in;
  });
  f(to_bytes("a"));
  app.rt.flush();
  f(to_bytes("b"));
  app.rt.flush();
  EXPECT_EQ(executions.load(), 2);
  f(to_bytes("a"));
  f(to_bytes("b"));
  EXPECT_EQ(executions.load(), 2) << "both now served from the store";
}

TEST_F(RuntimeTest, CrossApplicationDeduplication) {
  // The headline feature (§III-C): app B reuses app A's result with no
  // shared key, because both own the same library code and input.
  App app_a(platform_, store_, "app-a");
  App app_b(platform_, store_, "app-b");

  std::atomic<int> exec_a{0}, exec_b{0};
  auto impl = [](const Bytes& in) {
    Bytes out = in;
    out.push_back(0x42);
    return out;
  };
  Deduplicable<Bytes(const Bytes&)> fa(app_a.rt, desc(), [&](const Bytes& in) {
    ++exec_a;
    return impl(in);
  });
  Deduplicable<Bytes(const Bytes&)> fb(app_b.rt, desc(), [&](const Bytes& in) {
    ++exec_b;
    return impl(in);
  });

  const Bytes input = to_bytes("shared workload");
  const Bytes ra = fa(input);
  app_a.rt.flush();
  const Bytes rb = fb(input);

  EXPECT_EQ(ra, rb);
  EXPECT_EQ(exec_a.load(), 1);
  EXPECT_EQ(exec_b.load(), 0) << "app B must reuse app A's result";
  EXPECT_TRUE(fb.last_was_deduplicated());
}

TEST_F(RuntimeTest, DifferentLibraryCodeDoesNotDeduplicate) {
  // Same descriptor *names*, different registered code: tags differ, so no
  // (incorrect) sharing happens.
  App app_a(platform_, store_, "app-a");
  App app_b(platform_, store_, "app-b");
  app_b.rt.libraries().register_library("testlib", "2.0",
                                        as_bytes("different-code"));

  std::atomic<int> exec_b{0};
  Deduplicable<Bytes(const Bytes&)> fa(app_a.rt, desc(),
                                       [](const Bytes& in) { return in; });
  Deduplicable<Bytes(const Bytes&)> fb(
      app_b.rt, {"testlib", "2.0", "bytes f(bytes)"}, [&](const Bytes& in) {
        ++exec_b;
        return in;
      });

  const Bytes input = to_bytes("same input");
  fa(input);
  app_a.rt.flush();
  fb(input);
  EXPECT_EQ(exec_b.load(), 1) << "different code must not share results";
}

TEST_F(RuntimeTest, UnownedLibraryRejectedAtWrapTime) {
  App app(platform_, store_, "app");
  EXPECT_THROW((Deduplicable<Bytes(const Bytes&)>(
                   app.rt, {"not-registered", "1.0", "f"},
                   [](const Bytes& in) { return in; })),
               EnclaveError);
}

TEST_F(RuntimeTest, PoisonedEntryDegradesToRecompute) {
  // A malicious application uploads garbage under the victim's tag before
  // the victim ever computes. The victim's GCM check fails (Fig. 3 bot) and
  // it recomputes locally — correctness is preserved.
  App victim(platform_, store_, "victim");
  Deduplicable<Bytes(const Bytes&)> f(victim.rt, desc(), [](const Bytes& in) {
    return concat(in, as_bytes("!"));
  });

  // Forge the tag the victim will derive and poison the store.
  const auto fn = victim.rt.resolve(desc());
  serialize::Encoder enc;
  serialize::Serde<Bytes>::encode(enc, to_bytes("input"));
  const auto tag = mle::derive_tag(fn, enc.view());
  serialize::PutRequest poison;
  poison.tag = tag;
  poison.requester.fill(0x66);
  poison.entry.challenge = Bytes(32, 0xaa);
  poison.entry.wrapped_key = Bytes(16, 0xbb);
  poison.entry.result_ct = Bytes(64, 0xcc);
  ASSERT_EQ(store_.put(poison).status, serialize::PutStatus::kStored);

  const Bytes out = f(to_bytes("input"));
  EXPECT_EQ(out, to_bytes("input!")) << "victim still gets the right answer";
  EXPECT_FALSE(f.last_was_deduplicated());
  EXPECT_EQ(victim.rt.stats().failed_recoveries, 1u);
}

TEST_F(RuntimeTest, SyncPutMode) {
  RuntimeConfig cfg;
  cfg.async_put = false;
  App app(platform_, store_, "sync-app", cfg);
  Deduplicable<Bytes(const Bytes&)> f(app.rt, desc(),
                                      [](const Bytes& in) { return in; });
  f(to_bytes("x"));
  // No flush needed: the PUT completed synchronously.
  EXPECT_EQ(store_.stats().stored, 1u);
  f(to_bytes("x"));
  EXPECT_TRUE(f.last_was_deduplicated());
}

TEST_F(RuntimeTest, AsyncPutsDrainOnDestruction) {
  {
    App app(platform_, store_, "drain-app");
    Deduplicable<Bytes(const Bytes&)> f(app.rt, desc(),
                                        [](const Bytes& in) { return in; });
    for (int i = 0; i < 20; ++i) f(Bytes{static_cast<std::uint8_t>(i)});
    // Destructor must deliver all 20 queued PUTs.
  }
  EXPECT_EQ(store_.stats().stored, 20u);
}

TEST_F(RuntimeTest, BasicSingleKeySchemeWorksWithSharedKey) {
  RuntimeConfig cfg;
  cfg.scheme = RuntimeConfig::Scheme::kBasicSingleKey;
  cfg.system_key = Bytes(16, 0x77);
  App app_a(platform_, store_, "basic-a", cfg);
  App app_b(platform_, store_, "basic-b", cfg);

  std::atomic<int> exec_b{0};
  Deduplicable<Bytes(const Bytes&)> fa(app_a.rt, desc(),
                                       [](const Bytes& in) { return in; });
  Deduplicable<Bytes(const Bytes&)> fb(app_b.rt, desc(), [&](const Bytes& in) {
    ++exec_b;
    return in;
  });
  fa(to_bytes("w"));
  app_a.rt.flush();
  fb(to_bytes("w"));
  EXPECT_EQ(exec_b.load(), 0);
}

TEST_F(RuntimeTest, BasicAndRceSchemesDoNotInteroperate) {
  RuntimeConfig basic;
  basic.scheme = RuntimeConfig::Scheme::kBasicSingleKey;
  basic.system_key = Bytes(16, 0x77);
  App app_basic(platform_, store_, "basic", basic);
  App app_rce(platform_, store_, "rce");

  std::atomic<int> exec_rce{0};
  Deduplicable<Bytes(const Bytes&)> fb(app_basic.rt, desc(),
                                       [](const Bytes& in) { return in; });
  Deduplicable<Bytes(const Bytes&)> fr(app_rce.rt, desc(), [&](const Bytes& in) {
    ++exec_rce;
    return in;
  });
  fb(to_bytes("v"));
  app_basic.rt.flush();
  fr(to_bytes("v"));
  EXPECT_EQ(exec_rce.load(), 1) << "RCE app cannot decrypt basic-scheme entry";
  EXPECT_EQ(app_rce.rt.stats().failed_recoveries, 1u);
}

TEST_F(RuntimeTest, RichArgumentAndResultTypes) {
  App app(platform_, store_, "typed-app");
  using Histogram = std::map<std::string, std::uint32_t>;
  std::atomic<int> executions{0};
  Deduplicable<Histogram(const std::vector<std::string>&, const std::uint32_t&)>
      count_words(app.rt, desc("map<str,u32> bow(vector<str>, u32)"),
                  [&](const std::vector<std::string>& words,
                      const std::uint32_t& min_len) {
                    ++executions;
                    Histogram h;
                    for (const auto& w : words) {
                      if (w.size() >= min_len) ++h[w];
                    }
                    return h;
                  });

  const std::vector<std::string> words = {"the", "enclave", "the", "cloud"};
  const Histogram h1 = count_words(words, 2);
  app.rt.flush();
  const Histogram h2 = count_words(words, 2);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(h1.at("the"), 2u);

  // Different min_len is a different computation (parameters are input).
  count_words(words, 4);
  EXPECT_EQ(executions.load(), 2);
}

TEST_F(RuntimeTest, TransitionAccountingPerCall) {
  App app(platform_, store_, "count-app", store_path_config());
  Deduplicable<Bytes(const Bytes&)> f(app.rt, desc(),
                                      [](const Bytes& in) { return in; });
  const auto ecalls_before = app.enclave->ecall_count();
  const auto ocalls_before = app.enclave->ocall_count();
  f(to_bytes("z"));
  app.rt.flush();
  // Miss path: 1 app ECALL (the routine) + 1 OCALL (GET) + 1 worker ECALL
  // (PUT) + 1 OCALL inside it.
  EXPECT_EQ(app.enclave->ecall_count(), ecalls_before + 2);
  EXPECT_EQ(app.enclave->ocall_count(), ocalls_before + 2);

  f(to_bytes("z"));
  // Hit path adds 1 ECALL + 1 OCALL.
  EXPECT_EQ(app.enclave->ecall_count(), ecalls_before + 3);
  EXPECT_EQ(app.enclave->ocall_count(), ocalls_before + 3);
}

// ------------------------------------------------ in-enclave result cache

TEST_F(RuntimeTest, LocalCacheServesRepeatsWithZeroRoundTrips) {
  auto enclave = platform_.create_enclave("cache-app");
  auto conn = store::connect_app(store_, *enclave);
  auto* wire = static_cast<net::LoopbackTransport*>(conn.transport.get());
  DedupRuntime rt(*enclave, std::move(conn.session_key), std::move(conn.transport));
  rt.libraries().register_library("testlib", "1.0", as_bytes("testlib-code"));
  std::atomic<int> executions{0};
  Deduplicable<Bytes(const Bytes&)> f(rt, desc(), [&](const Bytes& in) {
    ++executions;
    return in;
  });

  const Bytes input = to_bytes("hot value");
  EXPECT_EQ(f(input), input);  // miss: compute + async PUT
  rt.flush();
  const auto frames_after_miss = wire->round_trips();

  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(f(input), input);
    EXPECT_TRUE(f.last_was_deduplicated());
  }
  EXPECT_EQ(wire->round_trips(), frames_after_miss)
      << "repeats must not cross the transport at all";
  EXPECT_EQ(executions.load(), 1);
  const auto s = rt.stats();
  EXPECT_EQ(s.local_hits, 5u);
  EXPECT_EQ(s.hits, 0u) << "the store never saw the repeats";
}

TEST_F(RuntimeTest, DisabledLocalCacheKeepsEveryCallOnTheStorePath) {
  auto enclave = platform_.create_enclave("no-cache-app");
  auto conn = store::connect_app(store_, *enclave);
  auto* wire = static_cast<net::LoopbackTransport*>(conn.transport.get());
  DedupRuntime rt(*enclave, std::move(conn.session_key), std::move(conn.transport),
                  store_path_config());
  rt.libraries().register_library("testlib", "1.0", as_bytes("testlib-code"));
  Deduplicable<Bytes(const Bytes&)> f(rt, desc(),
                                      [](const Bytes& in) { return in; });

  const Bytes input = to_bytes("hot value");
  f(input);
  rt.flush();
  const auto frames_after_miss = wire->round_trips();
  f(input);
  f(input);
  EXPECT_EQ(wire->round_trips(), frames_after_miss + 2)
      << "with the cache off every repeat is one GET round trip";
  const auto s = rt.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.local_hits, 0u);
}

TEST_F(RuntimeTest, LocalCacheEvictsToItsByteCap) {
  RuntimeConfig cfg;
  cfg.local_cache_bytes = 2048;  // fits two ~700-byte results, not three
  App app(platform_, store_, "small-cache", cfg);
  Deduplicable<Bytes(const Bytes&)> f(
      app.rt, desc(), [](const Bytes& in) { return Bytes(700, in.at(0)); });

  const Bytes a = to_bytes("a"), b = to_bytes("b"), c = to_bytes("c");
  f(a);
  f(b);
  f(c);  // evicts a (LRU tail)
  app.rt.flush();

  f(a);  // not cached any more: served by the store
  f(c);  // still cached: served locally
  const auto s = app.rt.stats();
  EXPECT_EQ(s.hits, 1u) << "evicted entry fell back to the store";
  EXPECT_EQ(s.local_hits, 1u) << "resident entry stayed local";
}

TEST_F(RuntimeTest, LocalCacheChargesTrustedMemory) {
  const Bytes big(100 * 1024, 0x7f);
  std::uint64_t before = 0;
  {
    App app(platform_, store_, "charged-app");
    Deduplicable<Bytes(const Bytes&)> f(app.rt, desc(),
                                        [&](const Bytes&) { return big; });
    before = platform_.epc().used_bytes();
    f(to_bytes("x"));
    app.rt.flush();
    const std::uint64_t growth = platform_.epc().used_bytes() - before;
    EXPECT_GE(growth, big.size())
        << "cached plaintext must be charged against the app enclave's EPC";
    EXPECT_LT(growth, big.size() + 8 * 1024)
        << "the [res] ciphertext itself stays untrusted";
  }
  // The store keeps its (small) dictionary entry; the cache's 100 KB charge
  // must be gone with the runtime.
  EXPECT_LT(platform_.epc().used_bytes(), before + 4 * 1024)
      << "cache charge released with the runtime";
}

// Transparency property: for random inputs, the deduplicated function is
// observationally identical to the plain function.
class TransparencySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransparencySweep, DedupEqualsPlain) {
  sgx::Platform platform(fast_model());
  store::ResultStore store(platform);
  App app(platform, store, "sweep-app");
  auto plain = [](const Bytes& in) {
    Bytes out;
    for (std::size_t i = 0; i < in.size(); ++i) {
      out.push_back(static_cast<std::uint8_t>(in[i] ^ (i & 0xff)));
    }
    return out;
  };
  Deduplicable<Bytes(const Bytes&)> f(app.rt, desc(), plain);

  Xoshiro256 rng(GetParam());
  std::vector<Bytes> inputs;
  for (int i = 0; i < 8; ++i) inputs.push_back(rng.bytes(rng.below(2000)));
  // Two passes: second pass is all hits; outputs must match the oracle.
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& in : inputs) {
      EXPECT_EQ(f(in), plain(in));
    }
    app.rt.flush();
  }
  // The second pass is served by store hits and/or the in-enclave cache;
  // either way every repeat must be a dedup, and outputs matched the oracle.
  const auto s = app.rt.stats();
  EXPECT_GE(s.hits + s.local_hits, inputs.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransparencySweep,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace speed::runtime
