// Spilled-metadata record codec: property round trips, checked-in golden
// byte vectors pinning the spill format, a decode fuzzer over truncated and
// bit-flipped records, and the pack_loc/unpack_loc locator range contract.
//
// The sealed layer (AES-GCM) normally rejects any host tampering before this
// codec ever sees modified bytes, but the decoder must stand on its own: a
// records-format bug plus a sealing bug must not compose into an enclave
// crash or a giant allocation. Hence the fuzzer demands that every corrupted
// input either decodes cleanly or throws SerializationError — nothing else —
// and that a hostile length prefix can never allocate past kMaxMetaVarBytes.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "common/error.h"
#include "store/meta_codec.h"
#include "store/meta_index.h"
#include "test_seed.h"

namespace speed::store {
namespace {

std::string to_hex(ByteView data) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (const std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(const std::string& hex) {
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

/// Fixed, human-auditable record used by the golden vectors (mirrors the WAL
/// codec's golden_insert so the two layouts are easy to diff by eye).
MetaRecord golden_record() {
  MetaRecord rec;
  for (std::size_t i = 0; i < rec.tag.size(); ++i) {
    rec.tag[i] = static_cast<std::uint8_t>(i);
  }
  rec.owner.fill(0xaa);
  rec.challenge = {0x01, 0x02, 0x03, 0x04};
  rec.wrapped_key = {0x05, 0x06, 0x07};
  rec.blob_digest.fill(0xbb);
  rec.blob_bytes = 0x1122334455667788ull;
  rec.blob.segment = 7;
  rec.blob.offset = 4096;
  rec.blob.length = 512;
  return rec;
}

// Golden vector for spill format version 1. Regenerate ONLY on an
// intentional, version-bumped format change: the failure output prints the
// new actual hex. Note the u16 (not u32) length prefixes — that cap is the
// decoder's alloc-bomb guard.
constexpr const char* kGoldenRecordHex =
    "01"                                                                // ver
    "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"  // tag
    "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"  // own
    "0400"      // challenge_len
    "01020304"  // challenge
    "0300"      // wrapped_key_len
    "050607"    // wrapped_key
    "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"  // dig
    "8877665544332211"   // blob_bytes
    "07000000"           // blob.segment
    "0010000000000000"   // blob.offset
    "0002000000000000";  // blob.length

// AAD binding the sealed spill record to the domain + format version.
constexpr const char* kGoldenAadHex =
    "10000000"                          // var-bytes length (16)
    "73706565642d73746f72652d6d657461"  // "speed-store-meta"
    "01";                               // format version

TEST(MetaCodecTest, GoldenRecordVector) {
  const Bytes encoded = encode_meta_record(golden_record());
  EXPECT_EQ(to_hex(encoded), kGoldenRecordHex)
      << "spilled meta record layout changed — if intentional, bump "
         "kMetaFormatVersion and regenerate this vector (existing sealed "
         "spill blobs become unreadable!)";
  // The checked-in bytes decode to the exact record (guards against a
  // compensating encode+decode change).
  EXPECT_EQ(decode_meta_record(from_hex(kGoldenRecordHex)), golden_record());
}

TEST(MetaCodecTest, GoldenSealAadVector) {
  EXPECT_EQ(to_hex(meta_seal_aad()), kGoldenAadHex)
      << "spill sealing AAD changed — this orphans every sealed spill "
         "record; if intentional, bump kMetaFormatVersion and regenerate";
}

TEST(MetaCodecTest, PropertyRoundTrip) {
  SPEED_SEEDED_RNG(rng, 0x3e7ac0dec001ull);
  for (int i = 0; i < 500; ++i) {
    MetaRecord rec;
    Bytes tag = rng.bytes(rec.tag.size());
    std::copy(tag.begin(), tag.end(), rec.tag.begin());
    Bytes owner = rng.bytes(rec.owner.size());
    std::copy(owner.begin(), owner.end(), rec.owner.begin());
    // Exercise empty, tiny, and cap-sized variable fields.
    rec.challenge = rng.bytes(rng.below(kMaxMetaVarBytes + 1));
    rec.wrapped_key = rng.bytes(rng.below(kMaxMetaVarBytes + 1));
    Bytes digest = rng.bytes(rec.blob_digest.size());
    std::copy(digest.begin(), digest.end(), rec.blob_digest.begin());
    rec.blob_bytes = rng();
    rec.blob.segment = static_cast<std::uint32_t>(rng());
    rec.blob.offset = rng();
    rec.blob.length = rng();
    EXPECT_EQ(decode_meta_record(encode_meta_record(rec)), rec) << "i=" << i;
  }
}

TEST(MetaCodecTest, EncodeRejectsOversizedVarFields) {
  MetaRecord rec = golden_record();
  rec.challenge.assign(kMaxMetaVarBytes + 1, 0x42);
  EXPECT_THROW(encode_meta_record(rec), ProtocolError);
  rec = golden_record();
  rec.wrapped_key.assign(kMaxMetaVarBytes + 1, 0x42);
  EXPECT_THROW(encode_meta_record(rec), ProtocolError);
}

TEST(MetaCodecTest, DecodeRejectsUnknownVersionTrailingBytesAndLengthBomb) {
  Bytes encoded = encode_meta_record(golden_record());
  // Unknown version.
  Bytes bad = encoded;
  bad[0] = kMetaFormatVersion + 1;
  EXPECT_THROW(decode_meta_record(bad), SerializationError);
  // Trailing garbage.
  bad = encoded;
  bad.push_back(0x00);
  EXPECT_THROW(decode_meta_record(bad), SerializationError);
  // Hostile length prefix: 0xffff far exceeds kMaxMetaVarBytes and must be
  // rejected by the cap check before any take/allocation. The challenge
  // length prefix sits right after version + tag + owner.
  bad = encoded;
  const std::size_t challenge_len_at = 1 + 32 + 32;
  bad[challenge_len_at] = 0xff;
  bad[challenge_len_at + 1] = 0xff;
  EXPECT_THROW(decode_meta_record(bad), SerializationError);
}

TEST(MetaCodecTest, DecodeFuzzTruncationAndBitFlips) {
  const Bytes encoded = encode_meta_record(golden_record());
  // Every truncated prefix must throw SerializationError — never crash,
  // never succeed (the layout has no optional tail).
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_THROW(
        decode_meta_record(ByteView(encoded.data(), len)),
        SerializationError)
        << "truncated to " << len << " bytes";
  }
  // Every single-bit flip either decodes (flip landed in a raw field and the
  // sealed layer is what would catch it) or throws SerializationError.
  // Anything else — another exception type, a crash, an allocation beyond
  // the cap — is a decoder bug.
  std::size_t rejected = 0;
  for (std::size_t byte = 0; byte < encoded.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = encoded;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      try {
        const MetaRecord rec = decode_meta_record(flipped);
        EXPECT_LE(rec.challenge.size(), kMaxMetaVarBytes);
        EXPECT_LE(rec.wrapped_key.size(), kMaxMetaVarBytes);
        EXPECT_NE(rec, golden_record()) << "flip was observable yet decoded "
                                           "to the original record";
      } catch (const SerializationError&) {
        ++rejected;
      }
    }
  }
  // Sanity: the version byte alone guarantees some flips are rejected.
  EXPECT_GE(rejected, 8u);
}

TEST(MetaCodecTest, PackLocRoundTripAndRange) {
  SPEED_SEEDED_RNG(rng, 0x3e7ac0dec002ull);
  constexpr std::uint32_t kMaxSegment = (std::uint32_t{1} << 19) - 1;
  constexpr std::uint64_t kMaxOffset = (std::uint64_t{1} << 44) - 1;
  for (int i = 0; i < 1000; ++i) {
    BlobRef ref;
    ref.segment = static_cast<std::uint32_t>(rng.below(kMaxSegment + 1));
    ref.offset = rng.below(kMaxOffset + 1);
    ref.length = rng.below(std::uint64_t{1} << 32);
    const auto loc = pack_loc(ref);
    ASSERT_TRUE(loc.has_value()) << "i=" << i;
    // Valid locators never collide with the pinned-entry namespace.
    EXPECT_EQ(*loc & kPinnedLocBit, 0u) << "i=" << i;
    const BlobRef back = unpack_loc(*loc, ref.length);
    EXPECT_EQ(back.segment, ref.segment);
    EXPECT_EQ(back.offset, ref.offset);
    EXPECT_EQ(back.length, ref.length);
  }
  // Exact boundaries.
  BlobRef edge{.segment = kMaxSegment, .offset = kMaxOffset, .length = 1};
  const auto packed = pack_loc(edge);
  ASSERT_TRUE(packed.has_value());
  EXPECT_EQ(*packed & kPinnedLocBit, 0u);
  EXPECT_EQ(unpack_loc(*packed, 1).segment, kMaxSegment);
  EXPECT_EQ(unpack_loc(*packed, 1).offset, kMaxOffset);
  // One past either bound does not fit; the store pins such entries.
  EXPECT_EQ(pack_loc({.segment = kMaxSegment + 1, .offset = 0, .length = 1}),
            std::nullopt);
  EXPECT_EQ(pack_loc({.segment = 0, .offset = kMaxOffset + 1, .length = 1}),
            std::nullopt);
}

}  // namespace
}  // namespace speed::store
