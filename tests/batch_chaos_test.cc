// Fault-injection suite for the batched protocol and the epoll server
// (ctest -L chaos; CI also runs it under ThreadSanitizer): mid-batch
// disconnects, abrupt-close durability of acknowledged PUTs, connection
// churn against a shared switchless ring, and hostile clients racing
// honest ones. Deterministic conformance tests live in batch_test.cc.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "runtime/speed.h"
#include "store/tcp_server.h"
#include "test_seed.h"

namespace speed {
namespace {

using serialize::BatchRequest;
using serialize::BatchResponse;
using serialize::GetResponse;
using serialize::Message;
using serialize::PutRequest;
using serialize::PutResponse;
using serialize::PutStatus;
using serialize::Tag;

sgx::CostModel fast_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  m.epc_page_swap_ns = 0;
  return m;
}

Tag random_tag(Xoshiro256& rng) {
  Tag t;
  for (auto& b : t) b = static_cast<std::uint8_t>(rng());
  return t;
}

PutRequest make_put(const Tag& tag, const sgx::Measurement& requester) {
  PutRequest req;
  req.tag = tag;
  req.requester = requester;
  req.entry.challenge = Bytes{9, 9, 9};
  req.entry.wrapped_key = Bytes(16, 0x11);
  req.entry.result_ct = Bytes(64, 0x77);
  return req;
}

serialize::GetRequest make_get(const Tag& tag,
                               const sgx::Measurement& requester) {
  serialize::GetRequest req;
  req.tag = tag;
  req.requester = requester;
  return req;
}

// Hand-rolled TCP client: owns its secure channel so tests can disconnect
// at any point in the exchange.
struct RawTcpClient {
  RawTcpClient(sgx::Enclave& app, store::ResultStore& result_store,
               std::uint16_t port)
      : sock(net::tcp_connect("127.0.0.1", port)) {
    const net::ChannelKeyExchange kx(app);
    sock.send_frame(net::encode_handshake(
        kx.hello(result_store.enclave().measurement())));
    auto key = kx.derive(net::decode_handshake(sock.recv_frame()),
                         result_store.enclave().measurement());
    if (!key.has_value()) throw ProtocolError("raw client: bad server hello");
    channel.emplace(std::move(*key), /*is_initiator=*/true);
  }

  void send(const Message& m) {
    sock.send_frame(channel->wrap(serialize::encode_message(m)));
  }
  Message recv() {
    const auto plain = channel->unwrap(sock.recv_frame());
    if (!plain.has_value()) throw ProtocolError("raw client: bad frame");
    return serialize::decode_message(*plain);
  }

  net::FramedSocket sock;
  std::optional<net::SecureChannel> channel;
};

// True once every tag is retrievable from the store's plaintext infra
// plane; used to poll for asynchronous server-side application of PUTs.
bool all_present(store::ResultStore& result_store, const std::vector<Tag>& tags,
                 const sgx::Measurement& requester) {
  for (const Tag& tag : tags) {
    const Message reply = serialize::decode_message(
        result_store.handle(serialize::encode_message(
            Message(make_get(tag, requester)))));
    const auto* resp = std::get_if<GetResponse>(&reply);
    if (resp == nullptr || !resp->found) return false;
  }
  return true;
}

TEST(BatchChaosTest, AckedBatchPutsSurviveAbruptDisconnect) {
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  store::StoreTcpServer server(result_store, 0);
  auto app = platform.create_enclave("ack-app");
  const sgx::Measurement me = app->measurement();
  SPEED_SEEDED_RNG(rng, 0xACEDB001ull);

  std::vector<Tag> tags;
  BatchRequest batch;
  for (int i = 0; i < 16; ++i) {
    tags.push_back(random_tag(rng));
    batch.ops.emplace_back(make_put(tags.back(), me));
  }

  {
    RawTcpClient client(*app, result_store, server.port());
    client.send(Message(batch));
    const Message reply = client.recv();
    const auto* resp = std::get_if<BatchResponse>(&reply);
    ASSERT_NE(resp, nullptr);
    for (const auto& r : resp->replies) {
      EXPECT_EQ(std::get<PutResponse>(r).status, PutStatus::kStored);
    }
    // Abrupt close the moment the ack arrives — no orderly shutdown.
  }

  // Every acknowledged PUT is durable in the store despite the disconnect.
  EXPECT_TRUE(all_present(result_store, tags, me));

  // A fresh connection (the "restarted client") reads its own writes back.
  RawTcpClient reader(*app, result_store, server.port());
  BatchRequest gets;
  for (const Tag& tag : tags) gets.ops.emplace_back(make_get(tag, me));
  reader.send(Message(gets));
  const Message reply = reader.recv();
  const auto* resp = std::get_if<BatchResponse>(&reply);
  ASSERT_NE(resp, nullptr);
  for (const auto& r : resp->replies) {
    EXPECT_TRUE(std::get<GetResponse>(r).found);
  }
}

TEST(BatchChaosTest, DisconnectBeforeReadingStillAppliesParsedBatch) {
  // The client ships a batch of PUTs and vanishes without reading the
  // response. TCP delivers the sent bytes before the FIN, and the server
  // must drain every frame it parsed from a dead connection — pipelined
  // work is not dropped just because the response can no longer be sent.
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  store::StoreTcpServer server(result_store, 0);
  auto app = platform.create_enclave("vanish-app");
  const sgx::Measurement me = app->measurement();
  SPEED_SEEDED_RNG(rng, 0xDEADB002ull);

  std::vector<Tag> tags;
  {
    RawTcpClient client(*app, result_store, server.port());
    BatchRequest batch;
    for (int i = 0; i < 16; ++i) {
      tags.push_back(random_tag(rng));
      batch.ops.emplace_back(make_put(tags.back(), me));
    }
    client.send(Message(batch));
    // Scope exit closes the socket with the response unread.
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!all_present(result_store, tags, me)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "server dropped parsed frames from a disconnected client";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(BatchChaosTest, MidFrameDisconnectCostsOnlyThatConnection) {
  // A client dies halfway through a frame while honest pipelined clients
  // hammer the same server: the torn connection is contained (one session
  // error) and every honest batch completes.
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  store::StoreTcpServer server(result_store, 0);
  const sgx::Measurement probe_meas =
      platform.create_enclave("probe")->measurement();

  std::atomic<bool> stop{false};
  std::atomic<int> honest_batches{0};
  constexpr int kHonest = 3;
  std::vector<std::thread> honest;
  for (int t = 0; t < kHonest; ++t) {
    honest.emplace_back([&, t] {
      auto app = platform.create_enclave("honest-" + std::to_string(t));
      const sgx::Measurement me = app->measurement();
      RawTcpClient client(*app, result_store, server.port());
      SPEED_SEEDED_RNG(rng, 0x40E571000ull + static_cast<std::uint64_t>(t));
      while (!stop.load()) {
        BatchRequest batch;
        std::vector<Tag> tags;
        for (int i = 0; i < 8; ++i) {
          tags.push_back(random_tag(rng));
          batch.ops.emplace_back(make_put(tags.back(), me));
        }
        for (const Tag& tag : tags) batch.ops.emplace_back(make_get(tag, me));
        client.send(Message(batch));
        const Message reply = client.recv();
        const auto* resp = std::get_if<BatchResponse>(&reply);
        ASSERT_NE(resp, nullptr);
        ASSERT_EQ(resp->replies.size(), 16u);
        for (std::size_t i = 8; i < 16; ++i) {
          EXPECT_TRUE(std::get<GetResponse>(resp->replies[i]).found);
        }
        honest_batches.fetch_add(1);
      }
    });
  }

  // Torn clients: handshake, then die mid-frame (header promising more
  // bytes than ever arrive).
  for (int k = 0; k < 5; ++k) {
    auto app = platform.create_enclave("torn-" + std::to_string(k));
    RawTcpClient torn(*app, result_store, server.port());
    const Bytes partial = {0x40, 0x00, 0x00, 0x00, 0xAB, 0xCD};  // 64-byte frame, 2 sent
    ASSERT_EQ(::send(torn.sock.fd(), partial.data(), partial.size(),
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(partial.size()));
    // Destructor closes mid-frame.
  }

  // Let the honest traffic run long enough to overlap every torn close.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (honest_batches.load() < kHonest * 10 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (auto& t : honest) t.join();
  EXPECT_GE(honest_batches.load(), kHonest * 10);

  // All five torn connections were contained as session errors; poll
  // briefly — the server counts the error when it notices the EOF.
  for (int i = 0; i < 500 && server.session_errors() < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.session_errors(), 5u);
  EXPECT_EQ(server.connections_rejected(), 0u);
  (void)probe_meas;
}

TEST(BatchChaosTest, SwitchlessServerSurvivesConnectionChurn) {
  // Connections come and go while the shared ring drains their frames; a
  // departed session's queued calls must complete (or fail cleanly) without
  // wedging the ring for the survivors.
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  store::StoreServerConfig config;
  config.switchless = true;
  config.switchless_burst = 8;
  store::StoreTcpServer server(result_store, 0, std::nullopt, config);

  std::atomic<int> completed{0};
  constexpr int kThreads = 4;
  constexpr int kGenerations = 6;
  std::vector<std::thread> churn;
  for (int t = 0; t < kThreads; ++t) {
    churn.emplace_back([&, t] {
      SPEED_SEEDED_RNG(rng, 0xC4u + static_cast<std::uint64_t>(t));
      for (int gen = 0; gen < kGenerations; ++gen) {
        auto app = platform.create_enclave("churn-" + std::to_string(t) +
                                           "-" + std::to_string(gen));
        const sgx::Measurement me = app->measurement();
        RawTcpClient client(*app, result_store, server.port());
        BatchRequest batch;
        for (int i = 0; i < 4; ++i) {
          batch.ops.emplace_back(make_put(random_tag(rng), me));
        }
        client.send(Message(batch));
        if (gen % 2 == 0) {
          // Half the generations read their ack, half vanish first.
          const Message reply = client.recv();
          EXPECT_NE(std::get_if<BatchResponse>(&reply), nullptr);
        }
        completed.fetch_add(1);
      }
    });
  }
  for (auto& t : churn) t.join();
  EXPECT_EQ(completed.load(), kThreads * kGenerations);

  // The ring is still live: a fresh client gets served.
  auto app = platform.create_enclave("survivor");
  RawTcpClient client(*app, result_store, server.port());
  SPEED_SEEDED_RNG(rng, 0x5077u);
  const Tag tag = random_tag(rng);
  client.send(Message(make_put(tag, app->measurement())));
  EXPECT_EQ(std::get<PutResponse>(client.recv()).status, PutStatus::kStored);
  client.send(Message(make_get(tag, app->measurement())));
  EXPECT_TRUE(std::get<GetResponse>(client.recv()).found);
  EXPECT_GE(server.switchless_ring()->stats().calls, 2u);
}

TEST(BatchChaosTest, ServerStopWithInFlightBatchesDoesNotHang) {
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  store::StoreServerConfig config;
  config.switchless = true;
  auto server = std::make_unique<store::StoreTcpServer>(
      result_store, 0, std::nullopt, config);

  SPEED_SEEDED_RNG(rng, 0x570Full);
  std::vector<std::unique_ptr<sgx::Enclave>> apps;
  std::vector<std::unique_ptr<RawTcpClient>> clients;
  for (int i = 0; i < 4; ++i) {
    apps.push_back(platform.create_enclave("stop-" + std::to_string(i)));
    clients.push_back(std::make_unique<RawTcpClient>(*apps.back(), result_store,
                                                     server->port()));
    BatchRequest batch;
    for (int k = 0; k < 8; ++k) {
      batch.ops.emplace_back(make_put(random_tag(rng), apps.back()->measurement()));
    }
    clients.back()->send(Message(batch));
  }
  // Stop with batches potentially mid-flight; must join cleanly.
  server->stop();
  server.reset();
  SUCCEED();
}

}  // namespace
}  // namespace speed
