// Tests for the adaptive deduplication strategy (§VII future work):
// profile bookkeeping, the bypass policy, probing, and end-to-end behaviour
// on favourable vs pathological workloads.
#include <gtest/gtest.h>

#include "common/clock.h"
#include "runtime/adaptive.h"
#include "runtime/speed.h"

namespace speed::runtime {
namespace {

sgx::CostModel fast_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  return m;
}

TEST(AdaptiveProfileTest, DedupsUntilMinSamples) {
  AdaptiveConfig cfg;
  cfg.min_samples = 5;
  AdaptiveProfile profile(cfg);
  // Terrible economics (pure overhead, no hits) — but below min_samples the
  // policy must keep measuring.
  for (int i = 0; i < 4; ++i) {
    profile.record_miss(/*total=*/1000, /*compute=*/1);
    EXPECT_FALSE(profile.should_bypass()) << "sample " << i;
  }
  profile.record_miss(1000, 1);
  EXPECT_TRUE(profile.should_bypass());
}

TEST(AdaptiveProfileTest, HighHitRateExpensiveComputeKeepsDedup) {
  AdaptiveConfig cfg;
  cfg.min_samples = 2;
  AdaptiveProfile profile(cfg);
  profile.record_miss(/*total=*/1'100'000, /*compute=*/1'000'000);
  for (int i = 0; i < 20; ++i) profile.record_hit(/*total=*/100'000);
  EXPECT_FALSE(profile.should_bypass())
      << "overhead 0.1ms << hit_rate ~1 * compute 1ms";
}

TEST(AdaptiveProfileTest, ZeroHitRateBypasses) {
  AdaptiveConfig cfg;
  cfg.min_samples = 4;
  AdaptiveProfile profile(cfg);
  for (int i = 0; i < 10; ++i) {
    profile.record_miss(/*total=*/120'000, /*compute=*/100'000);
  }
  EXPECT_TRUE(profile.should_bypass()) << "overhead > 0 but hit rate is 0";
}

TEST(AdaptiveProfileTest, CheapFunctionBypassesDespiteHits) {
  AdaptiveConfig cfg;
  cfg.min_samples = 4;
  AdaptiveProfile profile(cfg);
  // compute 10us, overhead 100us, hit rate ~50%: 100 > 1.25 * 0.5 * 10.
  for (int i = 0; i < 10; ++i) {
    profile.record_miss(/*total=*/110'000, /*compute=*/10'000);
    profile.record_hit(/*total=*/100'000);
  }
  EXPECT_TRUE(profile.should_bypass());
}

TEST(AdaptiveProfileTest, ProbeCadence) {
  AdaptiveConfig cfg;
  cfg.probe_interval = 4;
  AdaptiveProfile profile(cfg);
  int probes = 0;
  for (int i = 0; i < 16; ++i) probes += profile.next_is_probe();
  EXPECT_EQ(probes, 4);
}

TEST(AdaptiveProfileTest, SnapshotTracksEma) {
  AdaptiveProfile profile;
  profile.record_miss(2000, 1000);
  const auto s = profile.snapshot();
  EXPECT_DOUBLE_EQ(s.compute_ns, 1000.0);
  EXPECT_DOUBLE_EQ(s.overhead_ns, 1000.0);
  EXPECT_EQ(s.samples, 1u);
}

// ---------------------------------------------------------- end to end

struct AdaptiveApp {
  AdaptiveApp(sgx::Platform& platform, store::ResultStore& store)
      : enclave(platform.create_enclave("adaptive-app")),
        connection(store::connect_app(store, *enclave)),
        rt(*enclave, std::move(connection.session_key), std::move(connection.transport)) {
    rt.libraries().register_library("lib", "1", as_bytes("code"));
  }
  std::unique_ptr<sgx::Enclave> enclave;
  store::AppConnection connection;
  DedupRuntime rt;
};

TEST(AdaptiveEndToEndTest, UniqueInputCheapFunctionLearnsToBypass) {
  sgx::Platform platform(fast_model());
  store::ResultStore store(platform);
  AdaptiveApp app(platform, store);

  AdaptiveConfig cfg;
  cfg.min_samples = 6;
  cfg.probe_interval = 8;
  // A trivial function fed unique inputs: dedup never pays.
  AdaptiveDeduplicable<Bytes(const Bytes&)> f(
      app.rt, {"lib", "1", "cheap"},
      [](const Bytes& in) { return in; }, cfg);

  int bypassed = 0;
  for (int i = 0; i < 60; ++i) {
    f(Bytes{static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i >> 4)});
    bypassed += f.last_action() == decltype(f)::Action::kBypassed;
  }
  app.rt.flush();
  EXPECT_GT(bypassed, 30) << "the policy should have switched to bypass";
  const auto stats = app.rt.stats();
  EXPECT_LT(stats.calls, 60u) << "bypassed calls never reach the runtime";
}

TEST(AdaptiveEndToEndTest, ExpensiveRepeatedFunctionKeepsDedup) {
  sgx::Platform platform(fast_model());
  store::ResultStore store(platform);
  AdaptiveApp app(platform, store);

  AdaptiveConfig cfg;
  cfg.min_samples = 4;
  // The profile measures wall time, so a hit-path call preempted for longer
  // than hysteresis * 3 ms (parallel ctest on a small host) can transiently
  // flip the policy; a short probe interval bounds each flip to a few calls.
  cfg.probe_interval = 4;
  AdaptiveDeduplicable<Bytes(const Bytes&)> f(
      app.rt, {"lib", "1", "slow"},
      [](const Bytes& in) {
        busy_wait_ns(3'000'000);  // 3 ms of "work"
        return in;
      },
      cfg);

  const Bytes hot = to_bytes("hot input");
  int bypassed = 0, hits = 0;
  for (int i = 0; i < 30; ++i) {
    f(hot);
    app.rt.flush();
    bypassed += f.last_action() == decltype(f)::Action::kBypassed;
    hits += f.last_action() == decltype(f)::Action::kHit;
  }
  EXPECT_LE(bypassed, 8) << "dedup clearly pays for a 3ms hot function; only "
                            "scheduler-noise flips (recovered by probes) are "
                            "tolerated";
  EXPECT_GE(hits, 20);
}

TEST(AdaptiveEndToEndTest, ProbingRecoversWhenWorkloadTurnsHot) {
  sgx::Platform platform(fast_model());
  store::ResultStore store(platform);
  AdaptiveApp app(platform, store);

  AdaptiveConfig cfg;
  cfg.min_samples = 4;
  cfg.probe_interval = 4;
  cfg.ema_alpha = 0.5;  // adapt fast for the test
  AdaptiveDeduplicable<Bytes(const Bytes&)> f(
      app.rt, {"lib", "1", "shifting"},
      [](const Bytes& in) {
        busy_wait_ns(2'000'000);
        return in;
      },
      cfg);

  // Phase 1: unique inputs. Even at 2ms compute, hit rate 0 => bypass.
  for (int i = 0; i < 30; ++i) {
    f(Bytes{static_cast<std::uint8_t>(i), 0x01});
    app.rt.flush();
  }
  EXPECT_EQ(f.last_action(), decltype(f)::Action::kBypassed);

  // Phase 2: one hot input repeats; probes hit the store, the hit-rate EMA
  // climbs, and the policy flips back to dedup.
  const Bytes hot = to_bytes("suddenly popular");
  int late_hits = 0;
  for (int i = 0; i < 60; ++i) {
    f(hot);
    app.rt.flush();
    if (i >= 40) late_hits += f.last_action() == decltype(f)::Action::kHit;
  }
  EXPECT_GT(late_hits, 10) << "the policy must rediscover deduplication";
}

}  // namespace
}  // namespace speed::runtime
