// Reproducible randomness for the randomized test suites (fuzz,
// concurrency, recovery torture).
//
// Every randomized test derives its RNG seed through resolve_test_seed():
// by default that is the test's fixed base seed (deterministic CI), but
// setting SPEED_TEST_SEED=<decimal> overrides *all* of them — rerun a
// failing binary with the seed it printed to reproduce the exact workload:
//
//   SPEED_TEST_SEED=123456789 ./tests/recovery_test --gtest_filter=...
//
// SPEED_SEEDED_RNG additionally attaches the resolved seed to every
// assertion failure in scope (SCOPED_TRACE) and to the test's XML/JSON
// record (RecordProperty — SCOPED_TRACE is thread-local, so the property is
// what survives failures on worker threads).
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/rng.h"

namespace speed::testing {

/// The seed a randomized test should use: `base` unless SPEED_TEST_SEED is
/// set (a decimal uint64), which overrides every base seed in the process.
inline std::uint64_t resolve_test_seed(std::uint64_t base) {
  const char* env = std::getenv("SPEED_TEST_SEED");
  if (env == nullptr || *env == '\0') return base;
  return std::strtoull(env, nullptr, 10);
}

inline std::string seed_trace(std::uint64_t seed) {
  return "SPEED_TEST_SEED=" + std::to_string(seed) +
         " reproduces this workload";
}

}  // namespace speed::testing

/// Declares `name` as a seeded Xoshiro256 in the current test scope, with
/// the resolved seed attached to failures and to the test record.
#define SPEED_SEEDED_RNG(name, base_seed)                                   \
  const std::uint64_t name##_seed =                                         \
      ::speed::testing::resolve_test_seed(base_seed);                       \
  RecordProperty("speed_test_seed",                                         \
                 std::to_string(name##_seed));                              \
  SCOPED_TRACE(::speed::testing::seed_trace(name##_seed));                  \
  ::speed::Xoshiro256 name(name##_seed)
