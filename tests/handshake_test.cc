// Tests for the attested channel establishment (local attestation reports
// carrying ephemeral X25519 keys) and its integration with StoreSession.
#include <gtest/gtest.h>

#include "net/handshake.h"
#include "store/store_session.h"

namespace speed::net {
namespace {

sgx::CostModel fast_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  return m;
}

class HandshakeTest : public ::testing::Test {
 protected:
  HandshakeTest()
      : platform_(fast_model()),
        app_(platform_.create_enclave("app")),
        store_(platform_.create_enclave("store")) {}

  sgx::Platform platform_;
  std::unique_ptr<sgx::Enclave> app_;
  std::unique_ptr<sgx::Enclave> store_;
};

TEST_F(HandshakeTest, BothSidesDeriveSameKey) {
  ChannelKeyExchange kx_app(*app_);
  ChannelKeyExchange kx_store(*store_);
  const auto app_hello = kx_app.hello(store_->measurement());
  const auto store_hello = kx_store.hello(app_->measurement());

  const auto key_at_store = kx_store.derive(app_hello);
  const auto key_at_app = kx_app.derive(store_hello);
  ASSERT_TRUE(key_at_store.has_value());
  ASSERT_TRUE(key_at_app.has_value());
  EXPECT_TRUE(ct_equal(*key_at_store, *key_at_app));
  EXPECT_EQ(key_at_app->size(), 16u);
}

TEST_F(HandshakeTest, FreshKeysPerExchange) {
  ChannelKeyExchange kx1(*app_);
  ChannelKeyExchange kx2(*app_);
  EXPECT_NE(kx1.public_key(), kx2.public_key())
      << "ephemeral keys must be fresh per exchange";
}

TEST_F(HandshakeTest, WrongAddresseeRejected) {
  // A hello addressed to a different enclave must not verify here.
  ChannelKeyExchange kx_app(*app_);
  ChannelKeyExchange kx_store(*store_);
  auto other = platform_.create_enclave("other");
  const auto hello_for_other = kx_app.hello(other->measurement());
  EXPECT_FALSE(kx_store.derive(hello_for_other).has_value());
}

TEST_F(HandshakeTest, SubstitutedPublicKeyRejected) {
  // Host-in-the-middle: swap the advertised public key after the report was
  // created. The report binds the original key, so verification fails.
  ChannelKeyExchange kx_app(*app_);
  ChannelKeyExchange kx_store(*store_);
  auto hello = kx_app.hello(store_->measurement());
  hello.public_key[0] ^= 1;
  EXPECT_FALSE(kx_store.derive(hello).has_value());
}

TEST_F(HandshakeTest, ForgedReportRejected) {
  ChannelKeyExchange kx_app(*app_);
  ChannelKeyExchange kx_store(*store_);
  auto hello = kx_app.hello(store_->measurement());
  hello.report.mac[5] ^= 1;
  EXPECT_FALSE(kx_store.derive(hello).has_value());
}

TEST_F(HandshakeTest, MeasurementPinning) {
  ChannelKeyExchange kx_app(*app_);
  ChannelKeyExchange kx_store(*store_);
  const auto store_hello = kx_store.hello(app_->measurement());
  EXPECT_TRUE(kx_app.derive(store_hello, store_->measurement()).has_value());
  EXPECT_FALSE(
      kx_app.derive(store_hello, sgx::measure_identity("impostor-store"))
          .has_value())
      << "client must reject a store with the wrong measurement";
}

TEST_F(HandshakeTest, CrossPlatformHelloRejected) {
  sgx::Platform other_machine(fast_model());
  auto remote_app = other_machine.create_enclave("app");
  ChannelKeyExchange kx_remote(*remote_app);
  ChannelKeyExchange kx_store(*store_);
  const auto hello = kx_remote.hello(store_->measurement());
  EXPECT_FALSE(kx_store.derive(hello).has_value())
      << "local attestation does not cross machines";
}

TEST_F(HandshakeTest, WireRoundTrip) {
  ChannelKeyExchange kx_app(*app_);
  const auto hello = kx_app.hello(store_->measurement());
  const Bytes wire = encode_handshake(hello);
  const auto decoded = decode_handshake(wire);
  EXPECT_EQ(decoded.report.source_measurement, hello.report.source_measurement);
  EXPECT_EQ(decoded.report.user_data, hello.report.user_data);
  EXPECT_EQ(decoded.report.mac, hello.report.mac);
  EXPECT_EQ(decoded.public_key, hello.public_key);

  EXPECT_THROW(decode_handshake(ByteView(wire).first(wire.size() - 1)),
               SerializationError);
  Bytes padded = wire;
  padded.push_back(0);
  EXPECT_THROW(decode_handshake(padded), SerializationError);
}

TEST_F(HandshakeTest, EndToEndThroughStoreSession) {
  store::ResultStore result_store(platform_);
  auto conn = store::connect_app(result_store, *app_);
  ASSERT_EQ(conn.session_key.size(), 16u);

  // Drive a PUT/GET through the attested session.
  SecureChannel client(std::move(conn.session_key), /*is_initiator=*/true);
  serialize::PutRequest put;
  put.tag.fill(0x31);
  put.requester = app_->measurement();
  put.entry.challenge = Bytes(32, 1);
  put.entry.wrapped_key = Bytes(16, 2);
  put.entry.result_ct = Bytes(64, 3);
  auto resp =
      client.unwrap(conn.transport->round_trip(client.wrap(
          serialize::encode_message(put))));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(std::get<serialize::PutResponse>(serialize::decode_message(*resp)).status,
            serialize::PutStatus::kStored);

  serialize::GetRequest get;
  get.tag.fill(0x31);
  resp = client.unwrap(conn.transport->round_trip(client.wrap(
      serialize::encode_message(get))));
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(std::get<serialize::GetResponse>(serialize::decode_message(*resp)).found);
}

TEST_F(HandshakeTest, StoreSessionRejectsBadHello) {
  store::ResultStore result_store(platform_);
  ChannelKeyExchange kx(*app_);
  auto hello = kx.hello(result_store.enclave().measurement());
  hello.report.mac[0] ^= 1;
  EXPECT_THROW(store::StoreSession(result_store, hello), ProtocolError);
}

}  // namespace
}  // namespace speed::net
