// Tests for the §III-D defences: measurement-based authorization and
// per-identity rate limiting in front of the ResultStore.
#include <gtest/gtest.h>

#include "store/access_control.h"

namespace speed::store {
namespace {

sgx::CostModel fast_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  return m;
}

serialize::AppId make_app(std::uint8_t fill) {
  serialize::AppId a;
  a.fill(fill);
  return a;
}

serialize::PutRequest make_put(std::uint8_t tag_fill, std::uint8_t app_fill) {
  serialize::PutRequest put;
  put.tag.fill(tag_fill);
  put.requester = make_app(app_fill);
  put.entry.challenge = Bytes(32, 1);
  put.entry.wrapped_key = Bytes(16, 2);
  put.entry.result_ct = Bytes(64, 3);
  return put;
}

serialize::GetRequest make_get(std::uint8_t tag_fill, std::uint8_t app_fill) {
  serialize::GetRequest get;
  get.tag.fill(tag_fill);
  get.requester = make_app(app_fill);
  return get;
}

TEST(AccessPolicyTest, OpenModePermitsEveryone) {
  AccessPolicy policy;
  EXPECT_TRUE(policy.permits(make_app(1)));
  EXPECT_TRUE(policy.permits(make_app(2)));
}

TEST(AccessPolicyTest, AllowlistFiltersAndRevokes) {
  AccessPolicy policy;
  policy.set_mode(AccessPolicy::Mode::kAllowlist);
  EXPECT_FALSE(policy.permits(make_app(1)));
  policy.allow(make_app(1));
  EXPECT_TRUE(policy.permits(make_app(1)));
  EXPECT_FALSE(policy.permits(make_app(2)));
  policy.revoke(make_app(1));
  EXPECT_FALSE(policy.permits(make_app(1)));
}

TEST(RateLimiterTest, BurstThenThrottle) {
  RateLimiter limiter(/*tokens_per_second=*/10, /*burst=*/3);
  const auto app = make_app(1);
  std::uint64_t now = 1'000'000'000;
  EXPECT_TRUE(limiter.admit(app, now));
  EXPECT_TRUE(limiter.admit(app, now));
  EXPECT_TRUE(limiter.admit(app, now));
  EXPECT_FALSE(limiter.admit(app, now)) << "burst exhausted";
  // 100 ms refills exactly one token at 10/s.
  now += 100'000'000;
  EXPECT_TRUE(limiter.admit(app, now));
  EXPECT_FALSE(limiter.admit(app, now));
}

TEST(RateLimiterTest, PerIdentityBuckets) {
  RateLimiter limiter(1, 1);
  const std::uint64_t now = 5'000'000'000;
  EXPECT_TRUE(limiter.admit(make_app(1), now));
  EXPECT_TRUE(limiter.admit(make_app(2), now)) << "separate bucket";
  EXPECT_FALSE(limiter.admit(make_app(1), now));
}

TEST(RateLimiterTest, RefillCapsAtBurst) {
  RateLimiter limiter(1000, 2);
  const auto app = make_app(7);
  std::uint64_t now = 1'000'000'000;
  ASSERT_TRUE(limiter.admit(app, now));
  now += 60'000'000'000ull;  // a minute: far more than burst worth of tokens
  EXPECT_TRUE(limiter.admit(app, now));
  EXPECT_TRUE(limiter.admit(app, now));
  EXPECT_FALSE(limiter.admit(app, now)) << "tokens cap at burst";
}

class GatedStoreTest : public ::testing::Test {
 protected:
  GatedStoreTest() : platform_(fast_model()), store_(platform_) {}

  sgx::Platform platform_;
  ResultStore store_;
  AccessPolicy policy_;
};

TEST_F(GatedStoreTest, UnauthorizedPutRejectedGetMisses) {
  policy_.set_mode(AccessPolicy::Mode::kAllowlist);
  policy_.allow(make_app(0x01));
  GatedResultStore gated(store_, policy_);

  // Authorized app stores.
  auto resp = gated.dispatch_trusted(make_put(0x10, 0x01), 0);
  EXPECT_EQ(std::get<serialize::PutResponse>(resp).status,
            serialize::PutStatus::kStored);

  // Unauthorized app cannot store...
  resp = gated.dispatch_trusted(make_put(0x20, 0x02), 0);
  EXPECT_EQ(std::get<serialize::PutResponse>(resp).status,
            serialize::PutStatus::kQuotaExceeded);
  // ...and sees misses even for present tags.
  resp = gated.dispatch_trusted(make_get(0x10, 0x02), 0);
  EXPECT_FALSE(std::get<serialize::GetResponse>(resp).found);

  // The authorized app still hits.
  resp = gated.dispatch_trusted(make_get(0x10, 0x01), 0);
  EXPECT_TRUE(std::get<serialize::GetResponse>(resp).found);

  EXPECT_EQ(gated.stats().denied, 2u);
}

TEST_F(GatedStoreTest, RateLimiterThrottlesFlood) {
  RateLimiter limiter(/*tokens_per_second=*/1, /*burst=*/5);
  GatedResultStore gated(store_, policy_, &limiter);

  int stored = 0, throttled = 0;
  for (std::uint8_t i = 0; i < 20; ++i) {
    const auto resp = gated.dispatch_trusted(make_put(i, 0x01), /*now_ns=*/0);
    const auto status = std::get<serialize::PutResponse>(resp).status;
    stored += status == serialize::PutStatus::kStored;
    throttled += status == serialize::PutStatus::kQuotaExceeded;
  }
  EXPECT_EQ(stored, 5) << "only the burst lands";
  EXPECT_EQ(throttled, 15);
  EXPECT_EQ(gated.stats().throttled, 15u);

  // Another app is unaffected by the flooder's bucket.
  const auto resp = gated.dispatch_trusted(make_put(0x77, 0x02), 0);
  EXPECT_EQ(std::get<serialize::PutResponse>(resp).status,
            serialize::PutStatus::kStored);
}

TEST_F(GatedStoreTest, SyncPassesThrough) {
  GatedResultStore gated(store_, policy_, nullptr);
  const auto resp = gated.dispatch_trusted(serialize::SyncRequest{5}, 0);
  EXPECT_TRUE(std::holds_alternative<serialize::SyncResponse>(resp));
}

TEST_F(GatedStoreTest, ThrottledClientRecoversLater) {
  RateLimiter limiter(2, 1);  // 2 tokens/s, burst 1
  GatedResultStore gated(store_, policy_, &limiter);
  ASSERT_EQ(std::get<serialize::PutResponse>(
                gated.dispatch_trusted(make_put(1, 0x01), 0))
                .status,
            serialize::PutStatus::kStored);
  EXPECT_EQ(std::get<serialize::PutResponse>(
                gated.dispatch_trusted(make_put(2, 0x01), 0))
                .status,
            serialize::PutStatus::kQuotaExceeded);
  // Half a second later one token has refilled.
  EXPECT_EQ(std::get<serialize::PutResponse>(
                gated.dispatch_trusted(make_put(2, 0x01), 500'000'000))
                .status,
            serialize::PutStatus::kStored);
}

}  // namespace
}  // namespace speed::store
