// MUST NOT COMPILE under -Wthread-safety -Werror (clang): writes a
// GUARDED_BY field without holding its mutex, and calls a REQUIRES method
// without the capability. Registered WILL_FAIL on clang toolchains; GCC
// expands the annotations to nothing, so the case is clang-gated in CMake.
#include <cstdint>

#include "common/annotated_lock.h"

namespace {

class Account {
 public:
  void unguarded_deposit(std::uint64_t amount) {
    balance_ += amount;  // error: writing balance_ requires holding mu_
  }

  void audited_add(std::uint64_t amount) REQUIRES(mu_) { balance_ += amount; }

  void call_without_capability() {
    audited_add(1);  // error: calling audited_add requires holding mu_
  }

 private:
  mutable speed::Mutex mu_{speed::LockRank::kApp};
  std::uint64_t balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.unguarded_deposit(3);
  account.call_without_capability();
  return 0;
}
