// MUST NOT COMPILE: operator== on secrets is deleted — a timing-leaky
// comparison of key material is a compile error; use ct_equal instead.
#include "common/secret.h"

int main() {
  const auto a = speed::secret::Bytes<16>::copy_of(speed::Bytes(16, 1));
  const auto b = speed::secret::Bytes<16>::copy_of(speed::Bytes(16, 1));
  return a == b ? 0 : 1;  // deleted operator==
}
