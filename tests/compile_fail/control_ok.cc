// Positive control for the compile-fail suite: exercises the same headers
// and types as the negative cases, through the sanctioned APIs. If this file
// stops compiling, the WILL_FAIL cases below it prove nothing.
#include "common/secret.h"

int main() {
  const auto a = speed::secret::Bytes<16>::copy_of(speed::Bytes(16, 1));
  const auto b = a.clone();
  const bool same = ct_equal(a, b);

  speed::secret::Buffer buf = speed::secret::Buffer::copy_of(speed::Bytes(8, 2));
  const speed::ByteView view =
      buf.reveal_for(speed::secret::Purpose::of("test_vector_check"));
  return (same && view.size() == 8) ? 0 : 1;
}
