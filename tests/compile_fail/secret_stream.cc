// MUST NOT COMPILE: secrets are not streamable — key material cannot reach
// a log line or an ostream by construction.
#include <iostream>

#include "common/secret.h"

int main() {
  const speed::secret::Buffer key =
      speed::secret::Buffer::copy_of(speed::Bytes(16, 1));
  std::cout << key;  // deleted operator<<
  return 0;
}
