// Control case for the thread-safety compile-fail suite: correct use of the
// annotated lock wrappers must keep compiling under
// -Wthread-safety -Wthread-safety-beta -Werror, proving the negative cases
// below fail for the right reason and not because of a broken include path
// or an over-eager warning set.
#include <cstdint>

#include "common/annotated_lock.h"

namespace {

class Account {
 public:
  void deposit(std::uint64_t amount) {
    speed::MutexLock lock(mu_);
    balance_ += amount;
  }

  std::uint64_t balance() const {
    speed::MutexLock lock(mu_);
    return balance_;
  }

  void audited_add(std::uint64_t amount) REQUIRES(mu_) { balance_ += amount; }

  void add_through_requires(std::uint64_t amount) {
    speed::MutexLock lock(mu_);
    audited_add(amount);
  }

 private:
  mutable speed::Mutex mu_{speed::LockRank::kApp};
  std::uint64_t balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(3);
  account.add_through_requires(4);
  return static_cast<int>(account.balance() - 7);
}
