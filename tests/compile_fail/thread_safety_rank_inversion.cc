// MUST NOT COMPILE under -Wthread-safety-beta -Werror (clang): the
// ACQUIRED_AFTER edge declares the same total order docs/LOCK_ORDER.md
// records for these ranks, and locking against the declared order is the
// compile-time face of the run-time rank-check abort
// (tests/annotated_lock_test.cc proves the same inversion fires at run
// time). Clang-gated in CMake like thread_safety_unlocked_access.cc.
#include "common/annotated_lock.h"

namespace {

class TwoLocks {
 public:
  void inverted() {
    speed::MutexLock shard(shard_mu_);
    speed::MutexLock channel(channel_mu_);  // error: channel_mu_ must come first
  }

 private:
  speed::Mutex channel_mu_{speed::LockRank::kRuntimeChannel};
  speed::Mutex shard_mu_ ACQUIRED_AFTER(channel_mu_){
      speed::LockRank::kStoreShard};
};

}  // namespace

int main() {
  TwoLocks locks;
  locks.inverted();
  return 0;
}
