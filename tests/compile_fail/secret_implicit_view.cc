// MUST NOT COMPILE: no implicit conversion to ByteView — a secret cannot be
// handed to hex_encode, a serializer, or an OCALL without an audited reveal.
#include "common/secret.h"

int main() {
  const speed::secret::Buffer key =
      speed::secret::Buffer::copy_of(speed::Bytes(16, 1));
  const std::string hex = speed::hex_encode(key);  // no implicit ByteView
  return hex.empty() ? 1 : 0;
}
