// Concurrency tests: multi-threaded applications sharing one DedupRuntime,
// many runtimes hammering one store, and async PUTs racing GETs. These are
// the conditions of the paper's deployment ("a reasonably high request
// volume", multiple applications per machine).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "test_seed.h"
#include "runtime/speed.h"

namespace speed::runtime {
namespace {

sgx::CostModel fast_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  m.epc_page_swap_ns = 0;
  return m;
}

struct App {
  App(sgx::Platform& platform, store::ResultStore& store,
      const std::string& identity)
      : enclave(platform.create_enclave(identity)),
        connection(store::connect_app(store, *enclave)),
        rt(*enclave, std::move(connection.session_key), std::move(connection.transport)) {
    rt.libraries().register_library("lib", "1", as_bytes("code"));
  }
  std::unique_ptr<sgx::Enclave> enclave;
  store::AppConnection connection;
  DedupRuntime rt;
};

TEST(ConcurrencyTest, ThreadsShareOneRuntime) {
  sgx::Platform platform(fast_model());
  store::ResultStore store(platform);
  App app(platform, store, "mt-app");

  std::atomic<int> executions{0};
  Deduplicable<Bytes(const Bytes&)> f(
      app.rt, {"lib", "1", "f"}, [&](const Bytes& in) {
        ++executions;
        Bytes out = in;
        out.push_back(0x42);
        return out;
      });

  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 50;
  constexpr int kDistinctInputs = 10;
  std::atomic<int> wrong_results{0};
  const std::uint64_t base_seed = ::speed::testing::resolve_test_seed(0);
  RecordProperty("speed_test_seed", std::to_string(base_seed));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(base_seed + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kCallsPerThread; ++i) {
        const std::uint8_t which =
            static_cast<std::uint8_t>(rng.below(kDistinctInputs));
        const Bytes input = {which, 0x10};
        const Bytes expected = {which, 0x10, 0x42};
        if (f(input) != expected) ++wrong_results;
      }
    });
  }
  for (auto& th : threads) th.join();
  app.rt.flush();

  EXPECT_EQ(wrong_results.load(), 0);
  // Scheduling decides how many duplicates compute before their PUT lands
  // (on a single-CPU host the async worker can be starved for the whole
  // burst), but results are always correct, and once the queue drains every
  // input must be a store hit.
  const auto stats = app.rt.stats();
  EXPECT_EQ(stats.calls, static_cast<std::uint64_t>(kThreads * kCallsPerThread));
  const int exec_before_verify = executions.load();
  for (std::uint8_t which = 0; which < kDistinctInputs; ++which) {
    const Bytes input = {which, 0x10};
    const Bytes expected = {which, 0x10, 0x42};
    EXPECT_EQ(f(input), expected);
    EXPECT_TRUE(f.last_was_deduplicated()) << "input " << int(which);
  }
  EXPECT_EQ(executions.load(), exec_before_verify)
      << "after flush, every input is served from the store";
}

TEST(ConcurrencyTest, ManyRuntimesOneStore) {
  sgx::Platform platform(fast_model());
  store::ResultStore store(platform);

  constexpr int kApps = 4;
  std::vector<std::unique_ptr<App>> apps;
  for (int a = 0; a < kApps; ++a) {
    apps.push_back(std::make_unique<App>(platform, store,
                                         "app-" + std::to_string(a)));
  }

  std::atomic<int> total_exec{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int a = 0; a < kApps; ++a) {
    threads.emplace_back([&, a] {
      Deduplicable<Bytes(const Bytes&)> f(
          apps[static_cast<std::size_t>(a)]->rt, {"lib", "1", "f"},
          [&](const Bytes& in) {
            ++total_exec;
            return concat(in, as_bytes("!"));
          });
      for (int i = 0; i < 40; ++i) {
        const Bytes input = {static_cast<std::uint8_t>(i % 8)};
        if (f(input) != concat(input, as_bytes("!"))) ++wrong;
      }
      apps[static_cast<std::size_t>(a)]->rt.flush();
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(store.stats().entries, 8u)
      << "8 distinct computations, stored once each (first write wins)";
  // How many duplicate computations raced ahead of their PUTs is up to the
  // scheduler; the ceiling is every app computing every input once.
  EXPECT_LE(total_exec.load(), kApps * 40);
  EXPECT_GE(total_exec.load(), 8);
}

TEST(ConcurrencyTest, StoreSurvivesParallelMixedTraffic) {
  sgx::Platform platform(fast_model());
  store::StoreConfig cfg;
  cfg.max_ciphertext_bytes = 50'000;  // force concurrent evictions
  store::ResultStore store(platform, cfg);

  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  const std::uint64_t base_seed = ::speed::testing::resolve_test_seed(100);
  RecordProperty("speed_test_seed", std::to_string(base_seed));
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(base_seed + static_cast<std::uint64_t>(t));
      try {
        for (int i = 0; i < 300; ++i) {
          serialize::Tag tag{};
          tag[0] = static_cast<std::uint8_t>(rng.below(60));
          tag[1] = static_cast<std::uint8_t>(t);
          if (rng.below(2) == 0) {
            serialize::PutRequest put;
            put.tag = tag;
            put.requester.fill(static_cast<std::uint8_t>(t));
            put.entry.challenge = rng.bytes(32);
            put.entry.wrapped_key = rng.bytes(16);
            put.entry.result_ct = rng.bytes(500 + rng.below(1000));
            store.put(put);
          } else {
            serialize::GetRequest get;
            get.tag = tag;
            get.requester.fill(static_cast<std::uint8_t>(t));
            store.get(get);
          }
        }
      } catch (...) {
        failed = true;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_LE(store.stats().ciphertext_bytes, cfg.max_ciphertext_bytes);
}

TEST(ConcurrencyTest, ShardedStoreParallelStress) {
  // 8 worker threads hammer GET/PUT across an 8-shard store sized so every
  // shard keeps evicting, with per-app quotas in play and stats() polled
  // concurrently — the TSan acceptance workload for the lock-striped store.
  sgx::Platform platform(fast_model());
  store::StoreConfig cfg;
  cfg.shards = 8;
  cfg.max_ciphertext_bytes = 200'000;  // 25 KB per shard: constant eviction
  cfg.per_app_quota_bytes = 120'000;   // ledger contention across shards
  store::ResultStore store(platform, cfg);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  std::atomic<bool> failed{false};
  const std::uint64_t base_seed = ::speed::testing::resolve_test_seed(7);
  RecordProperty("speed_test_seed", std::to_string(base_seed));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(base_seed + static_cast<std::uint64_t>(t));
      try {
        for (int i = 0; i < kOpsPerThread; ++i) {
          serialize::Tag tag{};
          tag[0] = static_cast<std::uint8_t>(rng.below(100));  // dict key
          tag[8] = static_cast<std::uint8_t>(rng.below(64));   // shard pick
          if (rng.below(3) == 0) {
            serialize::PutRequest put;
            put.tag = tag;
            put.requester.fill(static_cast<std::uint8_t>(t % 3));
            put.entry.challenge = rng.bytes(32);
            put.entry.wrapped_key = rng.bytes(16);
            put.entry.result_ct = rng.bytes(500 + rng.below(1000));
            store.put(put);
          } else {
            serialize::GetRequest get;
            get.tag = tag;
            get.requester.fill(static_cast<std::uint8_t>(t % 3));
            store.get(get);
          }
          if (i % 97 == 0) (void)store.stats();  // lock-free reader in the mix
        }
      } catch (...) {
        failed = true;
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_FALSE(failed.load());
  const auto s = store.stats();
  EXPECT_EQ(s.get_requests + s.put_requests,
            static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  EXPECT_LE(s.ciphertext_bytes, cfg.max_ciphertext_bytes);
  EXPECT_GT(s.evictions, 0u) << "the stress must actually exercise eviction";
}

TEST(ConcurrencyTest, ThreadsRaceTheLocalCache) {
  // Many threads repeat a small set of inputs through one runtime with the
  // in-enclave cache on: after the first round, calls are pure cache traffic
  // racing insert/evict/lookup on the cache lock.
  sgx::Platform platform(fast_model());
  store::ResultStore store(platform);
  App app(platform, store, "cache-race-app");

  std::atomic<int> executions{0};
  Deduplicable<Bytes(const Bytes&)> f(
      app.rt, {"lib", "1", "f"}, [&](const Bytes& in) {
        ++executions;
        return concat(in, as_bytes("#"));
      });

  constexpr int kThreads = 4;
  std::atomic<int> wrong{0};
  const std::uint64_t base_seed = ::speed::testing::resolve_test_seed(31);
  RecordProperty("speed_test_seed", std::to_string(base_seed));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(base_seed + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 100; ++i) {
        const Bytes input = {static_cast<std::uint8_t>(rng.below(6))};
        if (f(input) != concat(input, as_bytes("#"))) ++wrong;
      }
    });
  }
  for (auto& th : threads) th.join();
  app.rt.flush();

  EXPECT_EQ(wrong.load(), 0);
  const auto s = app.rt.stats();
  EXPECT_EQ(s.calls, static_cast<std::uint64_t>(kThreads * 100));
  EXPECT_GT(s.local_hits, 0u) << "repeats were served from the cache";
  // Every call either computed or was deduplicated (store or local).
  EXPECT_EQ(s.calls, static_cast<std::uint64_t>(executions.load()) + s.hits +
                         s.local_hits);
}

}  // namespace
}  // namespace speed::runtime
