// Parameter-variation tests: non-default configurations of SIFT, LZ77,
// DEFLATE blocks, MapReduce partitions, and the SGX cost model — guarding
// the knobs the benches and ablations rely on.
#include <gtest/gtest.h>

#include "apps/deflate/deflate.h"
#include "apps/mapreduce/bow.h"
#include "apps/mapreduce/mapreduce.h"
#include "apps/sift/sift.h"
#include "sgx/enclave.h"
#include "common/error.h"
#include "common/rng.h"
#include "workload/synthetic.h"

namespace speed {
namespace {

// ------------------------------------------------------------------- SIFT

TEST(SiftParamsTest, NoUpsamplingStillWorks) {
  const sift::Image img = workload::synth_image(128, 128, 33);
  sift::SiftParams p;
  p.upsample_first_octave = false;
  const auto keypoints = sift::extract_sift(img, p);
  EXPECT_FALSE(keypoints.empty());
  // Upsampling finds (roughly) more keypoints, at higher cost.
  const auto upsampled = sift::extract_sift(img);
  EXPECT_GT(upsampled.size(), keypoints.size() / 2);
}

TEST(SiftParamsTest, StricterContrastFindsFewer) {
  const sift::Image img = workload::synth_image(128, 128, 35);
  sift::SiftParams strict;
  strict.contrast_threshold = 0.12;
  EXPECT_LT(sift::extract_sift(img, strict).size(),
            sift::extract_sift(img).size());
}

TEST(SiftParamsTest, MoreScalesPerOctave) {
  const sift::Image img = workload::synth_image(96, 96, 37);
  sift::SiftParams p;
  p.scales_per_octave = 5;
  const auto keypoints = sift::extract_sift(img, p);
  for (const auto& kp : keypoints) {
    EXPECT_GT(kp.sigma, 0.0f);
  }
}

TEST(SiftParamsTest, WorkingSetScalesWithImageAndParams) {
  const std::size_t small = sift::working_set_bytes(128, 128);
  const std::size_t big = sift::working_set_bytes(512, 512);
  EXPECT_GT(big, small * 10);
  sift::SiftParams no_up;
  no_up.upsample_first_octave = false;
  EXPECT_LT(sift::working_set_bytes(128, 128, no_up), small);
}

// ------------------------------------------------------------------ LZ77

TEST(Lz77ParamsTest, GreedyVsLazyBothRoundTrip) {
  const Bytes data = to_bytes(workload::synth_text(50000, 41));
  deflate::Lz77Params greedy;
  greedy.lazy = false;
  const auto greedy_tokens = deflate::lz77_parse(data, greedy);
  const auto lazy_tokens = deflate::lz77_parse(data);
  EXPECT_EQ(deflate::lz77_reconstruct(greedy_tokens), data);
  EXPECT_EQ(deflate::lz77_reconstruct(lazy_tokens), data);
  // Lazy matching should never parse worse (fewer or equal tokens).
  EXPECT_LE(lazy_tokens.size(), greedy_tokens.size() + greedy_tokens.size() / 20);
}

TEST(Lz77ParamsTest, ShortChainsTradeRatioForSpeed) {
  const Bytes data = to_bytes(workload::synth_text(50000, 43));
  deflate::Lz77Params weak;
  weak.max_chain = 1;
  weak.nice_length = 8;
  const Bytes strong_out = deflate::compress(data);
  deflate::DeflateOptions weak_opts;
  weak_opts.lz77 = weak;
  const Bytes weak_out = deflate::compress(data, weak_opts);
  EXPECT_EQ(deflate::decompress(weak_out), data);
  EXPECT_LE(strong_out.size(), weak_out.size())
      << "deeper search must not compress worse";
}

TEST(DeflateParamsTest, TinyBlocksStillDecode) {
  const Bytes data = to_bytes(workload::synth_text(30000, 47));
  deflate::DeflateOptions opts;
  opts.block_tokens = 64;  // many blocks, exercising per-block type choice
  EXPECT_EQ(deflate::decompress(deflate::compress(data, opts)), data);
}

// -------------------------------------------------------------- MapReduce

TEST(MapReduceParamsTest, PartitionCountInvariant) {
  std::vector<std::string> docs;
  for (int i = 0; i < 20; ++i) {
    docs.push_back(workload::synth_text(400, static_cast<std::uint64_t>(i)));
  }
  const std::function<void(const std::string&, mapreduce::Emitter<std::string, std::uint64_t>&)>
      mapper = [](const std::string& d,
                  mapreduce::Emitter<std::string, std::uint64_t>& out) {
        for (auto& t : mapreduce::tokenize(d, 2)) out.emit(std::move(t), 1);
      };
  const std::function<std::uint64_t(const std::string&, const std::vector<std::uint64_t>&)>
      reducer = [](const std::string&, const std::vector<std::uint64_t>& v) {
        std::uint64_t sum = 0;
        for (const auto x : v) sum += x;
        return sum;
      };

  mapreduce::JobConfig one_part{.workers = 2, .partitions = 1};
  mapreduce::JobConfig many_parts{.workers = 2, .partitions = 64};
  const auto r1 = mapreduce::run_job<std::string, std::string, std::uint64_t,
                                     std::uint64_t>(docs, mapper, reducer, one_part);
  const auto r2 = mapreduce::run_job<std::string, std::string, std::uint64_t,
                                     std::uint64_t>(docs, mapper, reducer, many_parts);
  EXPECT_EQ(r1, r2) << "partitioning must not change results";
}

TEST(MapReduceParamsTest, ZeroPartitionsRejected) {
  mapreduce::JobConfig bad{.workers = 1, .partitions = 0};
  const std::function<void(const int&, mapreduce::Emitter<int, int>&)> mapper =
      [](const int&, mapreduce::Emitter<int, int>&) {};
  const std::function<int(const int&, const std::vector<int>&)> reducer =
      [](const int&, const std::vector<int>&) { return 0; };
  EXPECT_THROW((mapreduce::run_job<int, int, int, int>({1}, mapper, reducer, bad)),
               Error);
}

// ------------------------------------------------------------- cost model

TEST(CostModelTest, EpcLimitIsConfigurable) {
  sgx::CostModel tiny;
  tiny.epc_usable_bytes = 1 << 16;
  tiny.epc_page_swap_ns = 0;
  tiny.ecall_ns = 0;
  tiny.ocall_ns = 0;
  sgx::Platform platform(tiny);
  platform.epc().allocate(1 << 20);
  EXPECT_GT(platform.epc().swapped_pages(), 200u);
  EXPECT_EQ(platform.epc().usable_bytes(), 1u << 16);
}

TEST(CostModelTest, DisabledModelNeverWaits) {
  sgx::Platform platform{sgx::CostModel::disabled()};
  Stopwatch sw;
  platform.epc().allocate(1 << 30);
  platform.epc().release(1 << 30);
  auto e = platform.create_enclave("fast");
  for (int i = 0; i < 100; ++i) {
    e->ecall([&] { e->ocall([] {}); });
  }
  EXPECT_LT(sw.elapsed_ms(), 100.0);
}

}  // namespace
}  // namespace speed
