// Streaming chunked-dedup suite: StreamSession put/get round trips, chunk
// reuse across edited versions, degradation under store failure, the
// single-chunk wire-compatibility regression, the BlockStore case study,
// cluster routing, and concurrency. Labeled `stream` in ctest so CI also
// runs it under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "apps/blockstore/blockstore.h"
#include "net/fault.h"
#include "runtime/speed.h"
#include "test_seed.h"
#include "workload/stream_corpus.h"

namespace speed {
namespace {

sgx::CostModel fast_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  m.epc_page_swap_ns = 0;
  return m;
}

mle::FunctionIdentity stream_identity(runtime::DedupRuntime& rt) {
  rt.libraries().register_library("stream-lib", "1.0", as_bytes("code v1"));
  return rt.resolve({"stream-lib", "1.0", "bytes put_stream(bytes)"});
}

/// One in-process deployment: platform + store + app enclave + runtime.
struct Deployment {
  explicit Deployment(runtime::RuntimeConfig config = {},
                      store::StoreConfig store_config = {})
      : platform(fast_model()),
        result_store(platform, store_config),
        enclave(platform.create_enclave("stream-app")) {
    auto conn = store::connect_app(result_store, *enclave);
    session = std::move(conn.session);
    loopback = static_cast<net::LoopbackTransport*>(conn.transport.get());
    rt = std::make_unique<runtime::DedupRuntime>(
        *enclave, std::move(conn.session_key), std::move(conn.transport),
        config);
  }

  sgx::Platform platform;
  store::ResultStore result_store;
  std::unique_ptr<sgx::Enclave> enclave;
  std::unique_ptr<store::StoreSession> session;
  net::LoopbackTransport* loopback = nullptr;
  std::unique_ptr<runtime::DedupRuntime> rt;
};

TEST(StreamSessionTest, SmallInputRoundTripsAsWholeCall) {
  Deployment d;
  runtime::StreamSession s(*d.rt, stream_identity(*d.rt));
  const Bytes data = to_bytes("well below the minimum chunk size");
  const auto handle = s.put(data);
  EXPECT_EQ(handle.kind, runtime::StreamHandle::Kind::kWholeCall);
  EXPECT_EQ(handle.total_bytes, data.size());
  EXPECT_EQ(s.get(handle), data);
  const auto stats = d.rt->stats();
  EXPECT_EQ(stats.stream_puts, 1u);
  EXPECT_EQ(stats.stream_chunks, 0u);  // not a stream: no chunk machinery
}

TEST(StreamSessionTest, EmptyInputRoundTrips) {
  Deployment d;
  runtime::StreamSession s(*d.rt, stream_identity(*d.rt));
  const auto handle = s.put({});
  EXPECT_EQ(handle.total_bytes, 0u);
  EXPECT_EQ(s.get(handle), Bytes{});
}

TEST(StreamSessionTest, LargeInputRoundTripsAsStream) {
  SPEED_SEEDED_RNG(rng, 0x57e40001);
  Deployment d;
  runtime::StreamSession s(*d.rt, stream_identity(*d.rt));
  const Bytes data = rng.bytes(300 * 1024);
  const auto handle = s.put(data);
  EXPECT_EQ(handle.kind, runtime::StreamHandle::Kind::kStream);
  EXPECT_EQ(handle.total_bytes, data.size());
  EXPECT_EQ(s.get(handle), data);
  const auto stats = d.rt->stats();
  EXPECT_GT(stats.stream_chunks, 1u);
  EXPECT_EQ(stats.stream_degraded, 0u);
  EXPECT_EQ(stats.stream_inline_chunks, 0u);
}

TEST(StreamSessionTest, IdenticalReuploadIsOneWholeStreamHit) {
  SPEED_SEEDED_RNG(rng, 0x57e40002);
  Deployment d;
  runtime::StreamSession s(*d.rt, stream_identity(*d.rt));
  const Bytes data = rng.bytes(200 * 1024);
  const auto h1 = s.put(data);
  const auto before = d.rt->stats();
  const std::uint64_t trips_before = d.loopback->round_trips();
  const auto h2 = s.put(data);
  // The second put is satisfied by the stream-tag fast path: one GET round
  // trip, no chunk traffic at all.
  EXPECT_EQ(d.loopback->round_trips() - trips_before, 1u);
  const auto after = d.rt->stats();
  EXPECT_EQ(after.stream_whole_hits, before.stream_whole_hits + 1);
  EXPECT_EQ(after.stream_chunks, before.stream_chunks);
  EXPECT_EQ(after.stream_bytes_deduped - before.stream_bytes_deduped,
            data.size());
  EXPECT_EQ(s.get(h2), data);
  EXPECT_EQ(h1.tag, h2.tag);
}

TEST(StreamSessionTest, EditedReuploadReusesUntouchedChunks) {
  SPEED_SEEDED_RNG(rng, 0x57e40003);
  Deployment d;
  runtime::StreamSession s(*d.rt, stream_identity(*d.rt));
  const Bytes v1 = rng.bytes(400 * 1024);
  const Bytes v2 = workload::edit_stream_blob(v1, 3, 64, rng());
  s.put(v1);
  const auto before = d.rt->stats();
  const auto handle = s.put(v2);
  const auto after = d.rt->stats();
  const auto v2_chunks = after.stream_chunks - before.stream_chunks;
  const auto v2_hits = after.stream_chunk_hits - before.stream_chunk_hits;
  ASSERT_GT(v2_chunks, 10u);
  // 3 small edits may perturb a handful of chunks; the rest must be hits.
  EXPECT_GE(v2_hits * 10, v2_chunks * 7)
      << v2_hits << " of " << v2_chunks << " chunks reused";
  EXPECT_GT(after.stream_bytes_deduped - before.stream_bytes_deduped,
            v2.size() / 2);
  EXPECT_EQ(s.get(handle), v2);
}

TEST(StreamSessionTest, ShiftedReuploadStillDedups) {
  SPEED_SEEDED_RNG(rng, 0x57e40004);
  Deployment d;
  runtime::StreamSession s(*d.rt, stream_identity(*d.rt));
  const Bytes base = rng.bytes(400 * 1024);
  s.put(base);
  const auto before = d.rt->stats();
  const Bytes shifted = workload::shift_stream_blob(base, 33, rng());
  const auto handle = s.put(shifted);
  const auto after = d.rt->stats();
  // Every offset moved; content-defined boundaries must still resync.
  const auto chunks = after.stream_chunks - before.stream_chunks;
  const auto hits = after.stream_chunk_hits - before.stream_chunk_hits;
  EXPECT_GE(hits * 10, chunks * 7) << hits << "/" << chunks;
  EXPECT_EQ(s.get(handle), shifted);
}

TEST(StreamSessionTest, CrossSessionDedupSharesChunks) {
  // Two sessions (two "clients") with the same function identity dedup
  // against each other; a different identity never does.
  SPEED_SEEDED_RNG(rng, 0x57e40005);
  Deployment d;
  const auto fn = stream_identity(*d.rt);
  runtime::StreamSession a(*d.rt, fn);
  runtime::StreamSession b(*d.rt, fn);
  const Bytes data = rng.bytes(200 * 1024);
  a.put(data);
  const auto before = d.rt->stats();
  b.put(data);
  EXPECT_EQ(d.rt->stats().stream_whole_hits, before.stream_whole_hits + 1);

  d.rt->libraries().register_library("other-lib", "1.0", as_bytes("code v2"));
  runtime::StreamSession c(
      *d.rt, d.rt->resolve({"other-lib", "1.0", "bytes put_stream(bytes)"}));
  const auto pre_c = d.rt->stats();
  c.put(data);
  const auto post_c = d.rt->stats();
  EXPECT_EQ(post_c.stream_whole_hits, pre_c.stream_whole_hits);
  EXPECT_EQ(post_c.stream_chunk_hits, pre_c.stream_chunk_hits);
}

TEST(StreamSessionTest, HandleSerializationRoundTrips) {
  SPEED_SEEDED_RNG(rng, 0x57e40006);
  Deployment d;
  runtime::StreamSession s(*d.rt, stream_identity(*d.rt));
  const Bytes data = rng.bytes(150 * 1024);
  const auto handle = s.put(data);
  const Bytes wire = handle.serialize();
  const auto parsed = runtime::StreamHandle::deserialize(wire);
  EXPECT_EQ(parsed.kind, handle.kind);
  EXPECT_EQ(parsed.tag, handle.tag);
  EXPECT_EQ(parsed.total_bytes, handle.total_bytes);
  EXPECT_EQ(s.get(parsed), data);

  Bytes truncated(wire.begin(), wire.end() - 1);
  EXPECT_THROW(runtime::StreamHandle::deserialize(truncated),
               SerializationError);
  Bytes bad_kind = wire;
  bad_kind[0] = 0x7f;
  EXPECT_THROW(runtime::StreamHandle::deserialize(bad_kind),
               SerializationError);
}

TEST(StreamSessionTest, BatchingCollapsesChunkRoundTrips) {
  SPEED_SEEDED_RNG(rng, 0x57e40007);
  runtime::RuntimeConfig config;
  config.batching.enabled = true;
  config.batching.max_ops = 128;
  Deployment d(config);
  runtime::StreamSession s(*d.rt, stream_identity(*d.rt));
  const Bytes data = rng.bytes(300 * 1024);
  const std::uint64_t before = d.loopback->round_trips();
  const auto handle = s.put(data);
  const std::uint64_t put_trips = d.loopback->round_trips() - before;
  const auto chunks = d.rt->stats().stream_chunks;
  ASSERT_GT(chunks, 10u);
  // One window: stream-tag GET + chunk GET batch + chunk PUT batch +
  // manifest PUT. Unbatched this would be 2 * chunks + 2 frames.
  EXPECT_LE(put_trips, 4u + 2 * (chunks / s.config().window));
  EXPECT_EQ(s.get(handle), data);
}

// ---------------------------------------------------------- degradation ---

TEST(StreamSessionTest, StoreDownDegradesToInlineManifestAndStillServes) {
  SPEED_SEEDED_RNG(rng, 0x57e40008);
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  auto enclave = platform.create_enclave("stream-app");
  auto conn = store::connect_app(result_store, *enclave);
  auto session = std::move(conn.session);
  // Every frame hits a black hole (fail_open default: degrade, don't throw).
  auto faulty = std::make_unique<net::FaultInjectingTransport>(
      std::move(conn.transport),
      net::FaultInjectingTransport::always(
          net::FaultInjectingTransport::Fault::kDisconnect));
  runtime::DedupRuntime rt(*enclave, std::move(conn.session_key),
                           std::move(faulty));
  runtime::StreamSession down(rt, stream_identity(rt));

  const Bytes data = rng.bytes(100 * 1024);
  const auto handle = down.put(data);
  EXPECT_EQ(handle.kind, runtime::StreamHandle::Kind::kInlineManifest);
  EXPECT_GT(rt.stats().stream_degraded, 0u);
  EXPECT_GT(rt.stats().stream_inline_chunks, 0u);
  // The handle carries everything: get() needs zero store round trips.
  EXPECT_EQ(down.get(handle), data);
}

TEST(StreamSessionTest, FailClosedThrowsWhenStoreUnreachable) {
  SPEED_SEEDED_RNG(rng, 0x57e40009);
  sgx::Platform platform(fast_model());
  store::ResultStore result_store(platform);
  auto enclave = platform.create_enclave("stream-app");
  auto conn = store::connect_app(result_store, *enclave);
  auto faulty = std::make_unique<net::FaultInjectingTransport>(
      std::move(conn.transport),
      net::FaultInjectingTransport::always(
          net::FaultInjectingTransport::Fault::kDisconnect));
  runtime::RuntimeConfig config;
  config.fail_open = false;
  runtime::DedupRuntime rt(*enclave, std::move(conn.session_key),
                           std::move(faulty), config);
  runtime::StreamSession s(rt, stream_identity(rt));
  EXPECT_THROW(s.put(rng.bytes(100 * 1024)), net::StoreUnavailableError);
}

TEST(StreamSessionTest, QuotaRejectionsInlineChunksWithoutDataLoss) {
  SPEED_SEEDED_RNG(rng, 0x57e4000a);
  store::StoreConfig store_config;
  store_config.per_app_quota_bytes = 48 * 1024;  // far below the blob size
  Deployment d({}, store_config);
  runtime::StreamSession s(*d.rt, stream_identity(*d.rt));
  const Bytes data = rng.bytes(300 * 1024);
  const auto handle = s.put(data);
  // Some chunk PUTs exceeded the quota and were inlined; the data survives.
  EXPECT_GT(d.rt->stats().stream_inline_chunks, 0u);
  EXPECT_EQ(s.get(handle), data);
}

// ------------------------------------------- wire-compat regression -------

/// Records every request frame crossing the transport.
struct RecordingTransport : net::Transport {
  explicit RecordingTransport(std::unique_ptr<net::Transport> wrapped)
      : inner(std::move(wrapped)) {}
  Bytes round_trip(ByteView request) override {
    frames.push_back(Bytes(request.begin(), request.end()));
    return inner->round_trip(request);
  }
  std::unique_ptr<net::Transport> inner;
  std::vector<Bytes> frames;
};

TEST(StreamSessionTest, SingleChunkPutIsWireIdenticalToExecute) {
  // The degrade rule's contract: an input below the chunking threshold must
  // produce the very frames DedupRuntime::execute would — same GET bytes
  // (deterministic under a seeded platform), same PUT frame shape — so a
  // store cannot even distinguish the two paths.
  const Bytes input = to_bytes("one small payload, one chunk");

  auto run = [&](auto&& do_put) -> std::vector<Bytes> {
    // Pre-provisioned-key mode on a seeded platform: the channel key is a
    // deterministic platform derivation (no handshake randomness), so two
    // identical runs produce bit-identical ciphertext frames.
    sgx::Platform platform(fast_model(), as_bytes("wire-compat-seed"));
    store::ResultStore result_store(platform);
    auto enclave = platform.create_enclave("wire-app");
    store::StoreSession session(result_store, enclave->measurement());
    auto recording =
        std::make_unique<RecordingTransport>(session.transport());
    auto* rec = recording.get();
    runtime::RuntimeConfig config;
    config.async_put = false;  // PUT rides the calling thread in both paths
    runtime::DedupRuntime rt(*enclave, result_store.enclave().measurement(),
                             std::move(recording), config);
    do_put(rt);
    return rec->frames;
  };

  const auto execute_frames = run([&](runtime::DedupRuntime& rt) {
    const auto fn = stream_identity(rt);
    rt.execute(fn, input, [&] { return input; });
  });
  const auto stream_frames = run([&](runtime::DedupRuntime& rt) {
    runtime::StreamSession s(rt, stream_identity(rt));
    s.put(input);
  });

  ASSERT_EQ(execute_frames.size(), 2u);  // GET miss, then PUT
  ASSERT_EQ(stream_frames.size(), 2u);
  // The GET frames must be bit-identical: same tag (call domain), same
  // requester, same channel key and sequence number.
  EXPECT_EQ(stream_frames[0], execute_frames[0]);
  // The PUT carries fresh randomness (challenge, key, IV), so assert shape:
  // identical frame length means identical tag/challenge/key/ct layout.
  EXPECT_EQ(stream_frames[1].size(), execute_frames[1].size());
}

TEST(StreamSessionTest, SingleChunkPutInteroperatesWithExecute) {
  // execute() stores a result; a stream put of the same (fn, input) must
  // hit that very entry — the two paths share one tag namespace.
  Deployment d;
  const auto fn = stream_identity(*d.rt);
  const Bytes input = to_bytes("shared between execute and stream put");
  int computed = 0;
  d.rt->execute(fn, input, [&] {
    ++computed;
    return input;
  });
  ASSERT_TRUE(d.rt->flush());
  runtime::StreamSession s(*d.rt, fn);
  const auto handle = s.put(input);
  EXPECT_EQ(computed, 1);
  EXPECT_EQ(d.rt->stats().stream_whole_hits, 1u);
  EXPECT_EQ(s.get(handle), input);
}

// ------------------------------------------------------------ blockstore --

TEST(BlockStoreTest, NamedObjectsRoundTrip) {
  SPEED_SEEDED_RNG(rng, 0x57e4000b);
  Deployment d;
  blockstore::BlockStore blobs(*d.rt);
  const Bytes doc = rng.bytes(150 * 1024);
  blobs.put("doc", doc);
  blobs.put("note", to_bytes("tiny"));
  EXPECT_EQ(blobs.size(), 2u);
  EXPECT_EQ(blobs.get("doc"), std::optional<Bytes>(doc));
  EXPECT_EQ(blobs.get("note"), std::optional<Bytes>(to_bytes("tiny")));
  EXPECT_FALSE(blobs.get("missing").has_value());
  const auto info = blobs.stat("doc");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->bytes, doc.size());
  EXPECT_EQ(info->kind, runtime::StreamHandle::Kind::kStream);
  EXPECT_EQ(blobs.list(), (std::vector<std::string>{"doc", "note"}));
  EXPECT_TRUE(blobs.erase("note"));
  EXPECT_FALSE(blobs.erase("note"));
  EXPECT_EQ(blobs.size(), 1u);
}

TEST(BlockStoreTest, ExportedHandleTransfersCapability) {
  SPEED_SEEDED_RNG(rng, 0x57e4000c);
  Deployment d;
  blockstore::BlockStore alice(*d.rt);
  blockstore::BlockStore bob(*d.rt);
  const Bytes doc = rng.bytes(120 * 1024);
  alice.put("doc", doc);
  bob.import_object("from-alice", alice.export_object("doc"));
  EXPECT_EQ(bob.get("from-alice"), std::optional<Bytes>(doc));
  EXPECT_THROW(alice.export_object("missing"), std::out_of_range);
}

TEST(BlockStoreTest, OverwriteReplacesAndVersionChainDedups) {
  SPEED_SEEDED_RNG(rng, 0x57e4000d);
  Deployment d;
  blockstore::BlockStore blobs(*d.rt);
  workload::StreamCorpusConfig corpus;
  corpus.blob_bytes = 200 * 1024;
  const auto versions = workload::stream_version_chain(corpus, 4, 2, 64, rng());
  for (const auto& v : versions) blobs.put("volume", v);
  EXPECT_EQ(blobs.get("volume"), std::optional<Bytes>(versions.back()));
  const auto stats = d.rt->stats();
  // Later versions must ride mostly on earlier versions' chunks.
  EXPECT_GE(stats.stream_chunk_hits * 10, stats.stream_chunks * 5);
}

// -------------------------------------------------------------- cluster ---

TEST(StreamClusterTest, StreamsRouteAndSurviveNodeFailure) {
  SPEED_SEEDED_RNG(rng, 0x57e4000e);
  sgx::Platform platform(fast_model());
  store::InprocClusterConfig cluster_config;
  cluster_config.nodes = 3;
  cluster_config.cluster.replicas = 1;
  store::InprocCluster cluster(platform, cluster_config);
  auto app = platform.create_enclave("stream-cluster-app");
  auto transport = cluster.connect(*app);
  runtime::DedupRuntime rt(*app, transport);
  runtime::StreamSession s(rt, stream_identity(rt));

  const Bytes data = rng.bytes(300 * 1024);
  const auto handle = s.put(data);
  EXPECT_EQ(s.get(handle), data);
  // Chunk tags spread across the ring: every node should hold entries.
  std::size_t populated = 0;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    if (cluster.store(i).stats().entries > 0) ++populated;
  }
  EXPECT_EQ(populated, cluster.node_count());

  // With one replica, any single node failure must not lose the stream.
  cluster.kill(rng.below(cluster.node_count()));
  EXPECT_EQ(s.get(handle), data);
}

TEST(StreamClusterTest, BatchedStreamsRouteAcrossNodes) {
  SPEED_SEEDED_RNG(rng, 0x57e4000f);
  sgx::Platform platform(fast_model());
  store::InprocClusterConfig cluster_config;
  cluster_config.nodes = 3;
  store::InprocCluster cluster(platform, cluster_config);
  auto app = platform.create_enclave("stream-cluster-batch");
  auto transport = cluster.connect(*app);
  runtime::RuntimeConfig config;
  config.batching.enabled = true;
  config.batching.max_ops = 128;
  runtime::DedupRuntime rt(*app, transport, config);
  runtime::StreamSession s(rt, stream_identity(rt));
  const Bytes data = rng.bytes(300 * 1024);
  const auto handle = s.put(data);
  EXPECT_EQ(s.get(handle), data);
  EXPECT_EQ(rt.stats().stream_degraded, 0u);
}

// ---------------------------------------------------------- concurrency ---

TEST(StreamConcurrencyTest, ParallelPutsAndGetsStayConsistent) {
  SPEED_SEEDED_RNG(rng, 0x57e40010);
  Deployment d;
  blockstore::BlockStore blobs(*d.rt);
  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  // Pre-generate per-thread version chains (the generator is not
  // thread-safe; the BlockStore under test is).
  workload::StreamCorpusConfig corpus;
  corpus.blob_bytes = 64 * 1024;
  std::vector<std::vector<Bytes>> chains;
  for (int t = 0; t < kThreads; ++t) {
    chains.push_back(
        workload::stream_version_chain(corpus, kRounds, 2, 64, rng() + t));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string name = "obj-" + std::to_string(t);
      for (int r = 0; r < kRounds; ++r) {
        blobs.put(name, chains[t][r]);
        const auto read = blobs.get(name);
        if (!read.has_value() || *read != chains[t][r]) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(blobs.get("obj-" + std::to_string(t)),
              std::optional<Bytes>(chains[t].back()));
  }
}

}  // namespace
}  // namespace speed
