// Tests for Adler-32, CRC-32, and the zlib/gzip containers, cross-checked
// against the system zlib tools where golden values are well known.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstdio>

#include "apps/deflate/checksum.h"
#include "common/error.h"
#include "apps/deflate/container.h"
#include "common/rng.h"

namespace speed::deflate {
namespace {

TEST(ChecksumTest, Adler32KnownValues) {
  EXPECT_EQ(adler32({}), 1u);
  // "Wikipedia" -> 0x11E60398 (the canonical example).
  EXPECT_EQ(adler32(as_bytes("Wikipedia")), 0x11E60398u);
}

TEST(ChecksumTest, Adler32Incremental) {
  const Bytes data = to_bytes("split across two updates");
  const std::uint32_t whole = adler32(data);
  const std::uint32_t part1 = adler32(ByteView(data).first(7));
  const std::uint32_t part2 = adler32(ByteView(data).subspan(7), part1);
  EXPECT_EQ(part2, whole);
}

TEST(ChecksumTest, Adler32LargeInputModularity) {
  // Exercise the deferred-modulo chunking with > 5552 bytes.
  Xoshiro256 rng(3);
  const Bytes data = rng.bytes(100000);
  std::uint32_t a = 1, b = 0;
  for (const std::uint8_t byte : data) {
    a = (a + byte) % 65521;
    b = (b + a) % 65521;
  }
  EXPECT_EQ(adler32(data), (b << 16) | a);
}

TEST(ChecksumTest, Crc32KnownValues) {
  EXPECT_EQ(crc32({}), 0u);
  // "123456789" -> 0xCBF43926 (the CRC-32 check value).
  EXPECT_EQ(crc32(as_bytes("123456789")), 0xCBF43926u);
  // "The quick brown fox jumps over the lazy dog" -> 0x414FA339.
  EXPECT_EQ(crc32(as_bytes("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(ChecksumTest, Crc32Incremental) {
  const Bytes data = to_bytes("incremental crc check");
  const std::uint32_t whole = crc32(data);
  const std::uint32_t part1 = crc32(ByteView(data).first(10));
  const std::uint32_t part2 = crc32(ByteView(data).subspan(10), part1);
  EXPECT_EQ(part2, whole);
}

TEST(ZlibTest, RoundTrip) {
  Xoshiro256 rng(5);
  for (const std::size_t size : {0u, 1u, 1000u, 100000u}) {
    const Bytes data = to_bytes(rng.ascii(size));
    const Bytes stream = zlib_compress(data);
    EXPECT_EQ(zlib_decompress(stream), data) << "size " << size;
    // Header sanity: 0x78 CMF and FCHECK validity.
    ASSERT_GE(stream.size(), 2u);
    EXPECT_EQ(stream[0], 0x78);
    EXPECT_EQ((stream[0] * 256 + stream[1]) % 31, 0);
  }
}

TEST(ZlibTest, CorruptionDetected) {
  const Bytes data = to_bytes("zlib integrity check payload zlib zlib");
  Bytes stream = zlib_compress(data);
  // Flip a bit in the Adler-32 trailer.
  stream[stream.size() - 1] ^= 1;
  EXPECT_THROW(zlib_decompress(stream), SerializationError);
}

TEST(ZlibTest, HeaderValidation) {
  const Bytes ok = zlib_compress(to_bytes("x"));
  Bytes bad_method = ok;
  bad_method[0] = 0x79;  // method 9
  EXPECT_THROW(zlib_decompress(bad_method), SerializationError);
  Bytes bad_check = ok;
  bad_check[1] ^= 1;
  EXPECT_THROW(zlib_decompress(bad_check), SerializationError);
  EXPECT_THROW(zlib_decompress(as_bytes("tiny")), SerializationError);
}

TEST(GzipTest, RoundTrip) {
  Xoshiro256 rng(7);
  for (const std::size_t size : {0u, 1u, 5000u, 200000u}) {
    const Bytes data = rng.bytes(size);
    const Bytes stream = gzip_compress(data);
    EXPECT_EQ(gzip_decompress(stream), data) << "size " << size;
    EXPECT_EQ(stream[0], 0x1f);
    EXPECT_EQ(stream[1], 0x8b);
  }
}

TEST(GzipTest, CrcAndSizeValidated) {
  const Bytes data = to_bytes("gzip member payload with some length to it");
  Bytes stream = gzip_compress(data);
  Bytes bad_crc = stream;
  bad_crc[bad_crc.size() - 5] ^= 1;  // inside CRC field
  EXPECT_THROW(gzip_decompress(bad_crc), SerializationError);
  Bytes bad_size = stream;
  bad_size[bad_size.size() - 1] ^= 1;  // inside ISIZE field
  EXPECT_THROW(gzip_decompress(bad_size), SerializationError);
}

TEST(GzipTest, OptionalHeaderFields) {
  // Hand-build a member with FNAME set.
  const Bytes data = to_bytes("named file content");
  const Bytes plain = gzip_compress(data);
  Bytes named = {0x1f, 0x8b, 8, 0x08, 0, 0, 0, 0, 0, 255};
  append(named, as_bytes("file.txt"));
  named.push_back(0);  // NUL terminator
  append(named, ByteView(plain).subspan(10));  // body + trailer
  EXPECT_EQ(gzip_decompress(named), data);
}

TEST(GzipTest, MalformedHeadersRejected) {
  EXPECT_THROW(gzip_decompress(as_bytes("not gzip at all....")),
               SerializationError);
  Bytes reserved = gzip_compress(to_bytes("x"));
  reserved[3] = 0x80;  // reserved flag bit
  EXPECT_THROW(gzip_decompress(reserved), SerializationError);
  // FNAME flag set but no terminator before the trailer.
  Bytes unterminated = {0x1f, 0x8b, 8, 0x08, 0, 0, 0, 0, 0, 255, 'a', 'b'};
  EXPECT_THROW(gzip_decompress(unterminated), SerializationError);
}

TEST(SystemInterop, GunzipCanReadOurOutput) {
  // If the host has gzip installed, our gzip members must interoperate.
  if (std::system("command -v gzip >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no system gzip";
  }
  const Bytes data = to_bytes(
      "interoperability test: this text round-trips through system gzip\n");
  const Bytes member = gzip_compress(data);
  FILE* f = fopen("/tmp/speed_gzip_test.gz", "wb");
  ASSERT_NE(f, nullptr);
  fwrite(member.data(), 1, member.size(), f);
  fclose(f);
  ASSERT_EQ(std::system("gzip -t /tmp/speed_gzip_test.gz"), 0)
      << "system gzip must accept our stream";
  ASSERT_EQ(std::system("gzip -dc /tmp/speed_gzip_test.gz > /tmp/speed_gzip_test.out"), 0);
  FILE* out = fopen("/tmp/speed_gzip_test.out", "rb");
  ASSERT_NE(out, nullptr);
  Bytes recovered(data.size() + 16);
  const std::size_t n = fread(recovered.data(), 1, recovered.size(), out);
  fclose(out);
  recovered.resize(n);
  EXPECT_EQ(recovered, data);
}

}  // namespace
}  // namespace speed::deflate
