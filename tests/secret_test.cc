// Tests for the secret taint types: wipe-on-destruction (the death-to-leak
// regression test for the PR's wipe-gap fixes), move semantics, audited
// escapes, and constant-time comparison.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <new>

#include "common/secret.h"

namespace speed::secret {
namespace {

ByteView peek(const Bytes<16>& b) {
  return b.reveal_for(Purpose::of("test_vector_check"));
}

ByteView peek(const Buffer& b) {
  return b.reveal_for(Purpose::of("test_vector_check"));
}

bool all_zero(ByteView v) {
  for (const auto byte : v) {
    if (byte != 0) return false;
  }
  return true;
}

TEST(SecretBytesTest, DefaultIsZero) {
  const Bytes<16> b;
  EXPECT_TRUE(all_zero(peek(b)));
  EXPECT_EQ(b.size(), 16u);
}

TEST(SecretBytesTest, CopyOfChecksSize) {
  const speed::Bytes raw(16, 0xAB);
  const auto b = Bytes<16>::copy_of(raw);
  EXPECT_TRUE(ct_equal(b, ByteView(raw)));
  EXPECT_THROW(Bytes<16>::copy_of(ByteView(raw.data(), 15)),
               std::invalid_argument);
}

TEST(SecretBytesTest, DestructionWipesStorage) {
  // The death-to-leak regression test: construct a secret in caller-owned
  // storage, destroy it, and assert the key bytes are gone. This is exactly
  // the early-return/exception path the runtime relies on — stack temporaries
  // holding k/h/session keys must not outlive their scope legibly.
  alignas(Bytes<16>) unsigned char storage[sizeof(Bytes<16>)] = {};
  auto* secret = new (storage) Bytes<16>(
      Bytes<16>::copy_of(speed::Bytes(16, 0x5E)));
  ASSERT_FALSE(all_zero(peek(*secret)));
  std::destroy_at(secret);
  // The barrier keeps the optimizer from reasoning about post-destruction
  // contents (it otherwise flags the read as use-after-lifetime).
  __asm__ volatile("" : : "r"(storage) : "memory");
  EXPECT_TRUE(all_zero(ByteView(storage, sizeof(storage))))
      << "destructor must securely wipe the key bytes";
}

TEST(SecretBytesTest, MoveWipesSource) {
  auto a = Bytes<16>::copy_of(speed::Bytes(16, 0x77));
  const Bytes<16> b = std::move(a);
  EXPECT_TRUE(all_zero(peek(a))) << "moved-from secret must be wiped";
  EXPECT_FALSE(all_zero(peek(b)));
}

TEST(SecretBytesTest, CloneIsExplicitAndIndependent) {
  auto a = Bytes<16>::copy_of(speed::Bytes(16, 0x42));
  const Bytes<16> b = a.clone();
  EXPECT_TRUE(ct_equal(a, b));
  a.wipe();
  EXPECT_FALSE(ct_equal(a, b)) << "clone must not alias the original";
}

TEST(SecretBytesTest, WritableFillsInPlace) {
  Bytes<16> b;
  for (auto& byte : b.writable()) byte = 0x11;
  EXPECT_TRUE(ct_equal(b, ByteView(speed::Bytes(16, 0x11))));
}

TEST(SecretBytesTest, CtEqualMatchesContent) {
  const auto a = Bytes<16>::copy_of(speed::Bytes(16, 1));
  const auto b = Bytes<16>::copy_of(speed::Bytes(16, 1));
  const auto c = Bytes<16>::copy_of(speed::Bytes(16, 2));
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
}

TEST(SecretBufferTest, SizedConstructorZeroFills) {
  const Buffer b(24);
  EXPECT_EQ(b.size(), 24u);
  EXPECT_FALSE(b.empty());
  EXPECT_TRUE(all_zero(peek(b)));
}

TEST(SecretBufferTest, AbsorbTakesOwnershipAndClearsSource) {
  speed::Bytes plain(16, 0x9C);
  const Buffer b = Buffer::absorb(std::move(plain));
  EXPECT_TRUE(plain.empty()) << "absorbed source must be left empty";
  EXPECT_TRUE(ct_equal(b, ByteView(speed::Bytes(16, 0x9C))));
}

TEST(SecretBufferTest, WipeZeroesContents) {
  Buffer b = Buffer::copy_of(speed::Bytes(32, 0xEE));
  ASSERT_FALSE(all_zero(peek(b)));
  b.wipe();
  EXPECT_TRUE(all_zero(peek(b)));
  EXPECT_EQ(b.size(), 32u) << "wipe zeroes in place, it does not shrink";
}

TEST(SecretBufferTest, MoveLeavesSourceEmpty) {
  Buffer a = Buffer::copy_of(speed::Bytes(16, 0x31));
  const Buffer b = std::move(a);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(b.size(), 16u);
}

TEST(SecretBufferTest, MoveAssignmentWipesPreviousContents) {
  // The rekey path: an old session key replaced by a fresh one must not
  // linger. The old buffer's bytes are wiped before being released.
  Buffer key = Buffer::copy_of(speed::Bytes(16, 0xAA));
  const std::uint8_t* old_data = peek(key).data();
  const std::size_t old_size = key.size();
  key = Buffer::copy_of(speed::Bytes(16, 0xBB));
  // The old allocation was wiped in-place before the vector replaced it; we
  // can only assert the observable part: the new contents are correct.
  (void)old_data;
  (void)old_size;
  EXPECT_TRUE(ct_equal(key, ByteView(speed::Bytes(16, 0xBB))));
}

TEST(SecretBufferTest, ReleaseForMovesBytesOut) {
  Buffer b = Buffer::copy_of(speed::Bytes(16, 0x66));
  const speed::Bytes out =
      std::move(b).release_for(Purpose::of("test_vector_check"));
  EXPECT_EQ(out, speed::Bytes(16, 0x66));
  EXPECT_TRUE(b.empty()) << "release transfers ownership";
}

TEST(SecretBufferTest, CtEqualHandlesSizeMismatch) {
  const Buffer a = Buffer::copy_of(speed::Bytes(16, 1));
  const Buffer b = Buffer::copy_of(speed::Bytes(8, 1));
  EXPECT_FALSE(ct_equal(a, b));
}

TEST(SecretPurposeTest, TagIsPreserved) {
  constexpr auto p = Purpose::of("rce_key_wrap");
  EXPECT_STREQ(p.tag(), "rce_key_wrap");
  // Illegal tags ("RCE", "has space", "") fail at compile time via consteval;
  // the compile-fail suite covers the negative cases for equality/streaming.
}

}  // namespace
}  // namespace speed::secret
