// Crash-recovery torture tests for the durable ResultStore backend.
//
// The central harness runs a randomized workload once against a fault-
// injecting backend to record every write the store issues (blob payloads
// and sealed WAL records, in order), then replays the same workload with a
// simulated crash planted at every interesting byte position of every
// write: the write is torn at that byte and the store is reopened from
// whatever made it to "disk". Invariant at every crash point:
//
//   * every PUT the store acknowledged before the crash is readable after
//     recovery, byte-for-byte;
//   * nothing else is: torn or unacknowledged records are dropped, so the
//     recovered entry count equals the acknowledged count exactly;
//   * after the crash (before reopening) the degraded store keeps serving
//     GETs and rejects PUTs;
//   * the reopened store accepts new work (the MAC chain extends past the
//     truncated tail).
//
// Alongside the torture runs: file-level tamper/reorder/truncate attacks on
// the WAL, ENOSPC degrade (including a real disk-full run on a small tmpfs
// when SPEED_DISKFULL_DIR is set), segment compaction churn, recovery-time
// eviction under shrunken capacity, and quota/EPC leak checks.
//
// All randomized workloads honor SPEED_TEST_SEED (tests/test_seed.h).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "store/fault_backend.h"
#include "store/file_backend.h"
#include "store/result_store.h"
#include "test_seed.h"
#include "workload/synthetic.h"

namespace speed::store {
namespace {

using serialize::EntryPayload;
using serialize::GetRequest;
using serialize::GetResponse;
using serialize::PutRequest;
using serialize::PutStatus;
using serialize::Tag;

sgx::CostModel fast_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  m.epc_page_swap_ns = 0;
  return m;
}

Tag make_tag(std::uint64_t n) {
  Tag t{};
  for (int i = 0; i < 8; ++i) {
    t[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(n >> (8 * i));
  }
  return t;
}

serialize::AppId make_app(std::uint8_t fill) {
  serialize::AppId a;
  a.fill(fill);
  return a;
}

/// Deterministic payload for workload index `idx`: duplicate requests for
/// the same index must carry identical entries (first write wins).
EntryPayload entry_for(std::uint64_t idx, std::uint64_t seed) {
  Xoshiro256 rng(seed ^ (idx * 0x9e3779b97f4a7c15ull) ^ 0xa5a5a5a5ull);
  EntryPayload e;
  e.challenge = rng.bytes(32);
  e.wrapped_key = rng.bytes(48);
  const std::size_t ct = 64 + static_cast<std::size_t>(rng.below(1985));
  e.result_ct = rng.bytes(ct);
  return e;
}

PutRequest put_for(std::uint64_t idx, std::uint64_t seed) {
  PutRequest put;
  put.tag = make_tag(idx + 1);
  put.requester = make_app(static_cast<std::uint8_t>(1 + idx % 3));
  put.entry = entry_for(idx, seed);
  return put;
}

std::string fresh_dir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "speed-recovery-" + name;
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

StoreConfig torture_config(std::shared_ptr<BlobBackend> backend) {
  StoreConfig cfg;
  cfg.backend = std::move(backend);
  cfg.shards = 2;  // capacity defaults are large: no eviction at this scale
  return cfg;
}

struct RunResult {
  std::map<std::uint64_t, EntryPayload> acked;  // idx -> acknowledged entry
  bool crashed = false;
};

/// Drives the zipf request stream of PUTs until done or the first rejection
/// (which, in a torture run, means the injected crash fired).
RunResult run_workload(ResultStore& store,
                       const std::vector<std::size_t>& stream,
                       std::uint64_t seed) {
  RunResult r;
  for (const std::size_t idx : stream) {
    const PutRequest put = put_for(idx, seed);
    const PutStatus status = store.put(put).status;
    if (status == PutStatus::kStored) {
      r.acked.emplace(idx, put.entry);
    } else if (status != PutStatus::kAlreadyPresent) {
      r.crashed = true;
      break;
    }
  }
  return r;
}

/// The interesting byte positions: for every write in the recorded
/// schedule, crash at its start, one byte in, its middle, and its last byte.
std::set<std::uint64_t> crash_budgets(const std::vector<std::uint64_t>& sizes) {
  std::set<std::uint64_t> budgets;
  std::uint64_t total = 0;
  for (const std::uint64_t s : sizes) {
    budgets.insert(total);
    if (s > 1) {
      budgets.insert(total + 1);
      budgets.insert(total + s / 2);
      budgets.insert(total + s - 1);
    }
    total += s;
  }
  return budgets;
}

/// Zero acknowledged-result loss, and nothing resurrected beyond it.
void verify_recovered(ResultStore& store,
                      const std::map<std::uint64_t, EntryPayload>& acked) {
  EXPECT_EQ(store.stats().entries, acked.size());
  for (const auto& [idx, payload] : acked) {
    GetRequest get;
    get.tag = make_tag(idx + 1);
    const GetResponse resp = store.get(get);
    ASSERT_TRUE(resp.found) << "acknowledged PUT lost: idx " << idx;
    EXPECT_EQ(resp.entry, payload) << "recovered entry differs: idx " << idx;
  }
}

/// Degraded-mode contract checked right after the injected crash: reads
/// keep working, writes are refused.
void verify_degraded(ResultStore& store,
                     const std::map<std::uint64_t, EntryPayload>& acked,
                     std::uint64_t seed) {
  EXPECT_TRUE(store.degraded());
  EXPECT_GE(store.stats().backend_write_errors, 1u);
  if (!acked.empty()) {
    const auto& [idx, payload] = *acked.begin();
    GetRequest get;
    get.tag = make_tag(idx + 1);
    const GetResponse resp = store.get(get);
    ASSERT_TRUE(resp.found);
    EXPECT_EQ(resp.entry, payload);
  }
  EXPECT_EQ(store.put(put_for(777777, seed)).status, PutStatus::kRejected);
}

// --------------------------------------------------------------- torture

TEST(RecoveryTortureTest, EveryFileCrashPointKeepsAckedResults) {
  SPEED_SEEDED_RNG(rng, 0xd1ce5eed0001ull);
  const auto stream = workload::zipf_request_stream(24, 40, 0.9, rng_seed);

  FileBackendConfig fcfg;
  fcfg.segment_bytes = 16 * 1024;  // force several segments
  fcfg.fsync_every = 1 << 20;      // crash sim is process-level; skip fsyncs

  // Clean pass: record the store's write schedule and the ground truth.
  std::vector<std::uint64_t> sizes;
  std::map<std::uint64_t, EntryPayload> clean_acked;
  {
    const std::string dir = fresh_dir("torture-clean");
    sgx::Platform platform(fast_model(), as_bytes(dir));
    auto fault = std::make_shared<FaultInjectingBackend>(
        std::make_shared<FileBackend>(dir, fcfg));
    ResultStore store(platform, torture_config(fault));
    const RunResult r = run_workload(store, stream, rng_seed);
    ASSERT_FALSE(r.crashed);
    sizes = fault->write_sizes();
    clean_acked = r.acked;
  }
  ASSERT_GE(clean_acked.size(), 10u);
  ASSERT_GE(sizes.size(), 2 * clean_acked.size());  // blob + WAL per PUT

  for (const std::uint64_t budget : crash_budgets(sizes)) {
    SCOPED_TRACE("crash after " + std::to_string(budget) + " bytes");
    const std::string dir = fresh_dir("torture-point");
    std::map<std::uint64_t, EntryPayload> acked;
    {
      sgx::Platform platform(fast_model(), as_bytes(dir));
      auto fault = std::make_shared<FaultInjectingBackend>(
          std::make_shared<FileBackend>(dir, fcfg));
      fault->fail_after_bytes(budget);
      ResultStore store(platform, torture_config(fault));
      RunResult r = run_workload(store, stream, rng_seed);
      ASSERT_TRUE(r.crashed);
      acked = std::move(r.acked);
      verify_degraded(store, acked, rng_seed);
    }
    // "Restart the process": reopen the directory with a fresh platform
    // derived from the same stable hardware key.
    sgx::Platform platform(fast_model(), as_bytes(dir));
    auto store = open_result_store(platform, dir, torture_config(nullptr),
                                   fcfg);
    verify_recovered(*store, acked);
    // The truncated chain extends: new work is accepted and durable.
    EXPECT_EQ(store->put(put_for(424242, rng_seed)).status,
              PutStatus::kStored);
  }
}

TEST(RecoveryTortureTest, EveryMemoryCrashPointKeepsAckedResults) {
  SPEED_SEEDED_RNG(rng, 0xd1ce5eed0002ull);
  const auto stream = workload::zipf_request_stream(24, 40, 0.9, rng_seed);

  // Pure-logic variant: the recording MemoryBackend survives the death of
  // the ResultStore object, so crash + reopen never touches a disk.
  std::vector<std::uint64_t> sizes;
  std::map<std::uint64_t, EntryPayload> clean_acked;
  {
    sgx::Platform platform(fast_model());
    auto fault = std::make_shared<FaultInjectingBackend>(
        std::make_shared<MemoryBackend>(/*record_wal=*/true));
    ResultStore store(platform, torture_config(fault));
    const RunResult r = run_workload(store, stream, rng_seed);
    ASSERT_FALSE(r.crashed);
    sizes = fault->write_sizes();
    clean_acked = r.acked;
  }
  ASSERT_GE(clean_acked.size(), 10u);

  for (const std::uint64_t budget : crash_budgets(sizes)) {
    SCOPED_TRACE("crash after " + std::to_string(budget) + " bytes");
    // One platform spans crash and reopen: same machine, same sealing key.
    sgx::Platform platform(fast_model());
    auto inner = std::make_shared<MemoryBackend>(/*record_wal=*/true);
    std::map<std::uint64_t, EntryPayload> acked;
    {
      auto fault = std::make_shared<FaultInjectingBackend>(inner);
      fault->fail_after_bytes(budget);
      ResultStore store(platform, torture_config(fault));
      RunResult r = run_workload(store, stream, rng_seed);
      ASSERT_TRUE(r.crashed);
      acked = std::move(r.acked);
      verify_degraded(store, acked, rng_seed);
    }
    ResultStore store(platform, torture_config(inner));
    verify_recovered(store, acked);
    EXPECT_EQ(store.put(put_for(424242, rng_seed)).status, PutStatus::kStored);
  }
}

// ------------------------------------------------- file-level WAL attacks

/// Offsets and sealed lengths of every intact WAL frame in `dir`.
std::vector<std::pair<std::uint64_t, std::uint64_t>> wal_frames(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> frames;
  FileBackend fb(dir);
  fb.wal_replay([&](ByteView record, std::uint64_t offset) {
    frames.emplace_back(offset, record.size());
    return true;
  });
  return frames;
}

void flip_wal_byte(const std::string& dir, std::uint64_t offset) {
  const std::string path = dir + "/wal.log";
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  std::fputc(c ^ 0x01, f);
  std::fclose(f);
}

/// Populates `dir` with `count` distinct entries (PUT order = WAL order).
std::map<std::uint64_t, EntryPayload> populate(const std::string& dir,
                                               std::size_t count,
                                               std::uint64_t seed,
                                               StoreConfig cfg = StoreConfig{},
                                               FileBackendConfig fcfg =
                                                   FileBackendConfig{}) {
  sgx::Platform platform(fast_model(), as_bytes(dir));
  auto store = open_result_store(platform, dir, std::move(cfg), fcfg);
  std::map<std::uint64_t, EntryPayload> acked;
  for (std::size_t i = 0; i < count; ++i) {
    const PutRequest put = put_for(i, seed);
    EXPECT_EQ(store->put(put).status, PutStatus::kStored);
    acked.emplace(i, put.entry);
  }
  store->flush_backend();
  return acked;
}

TEST(RecoveryTest, TamperedMidLogRecordTruncatesFromThere) {
  SPEED_SEEDED_RNG(rng, 0xd1ce5eed0003ull);
  const std::string dir = fresh_dir("tamper");
  auto acked = populate(dir, 10, rng_seed);
  const auto frames = wal_frames(dir);
  ASSERT_EQ(frames.size(), 10u);

  // Flip one bit inside record 4's sealed bytes: the MAC chain breaks there
  // and records 4..9 are discarded, even though 5..9 are byte-intact.
  flip_wal_byte(dir, frames[4].first + 4 + frames[4].second / 2);

  sgx::Platform platform(fast_model(), as_bytes(dir));
  auto store = open_result_store(platform, dir);
  EXPECT_TRUE(store->recovery_info().torn_tail);
  EXPECT_EQ(store->recovery_info().replayed_records, 4u);
  acked.erase(acked.lower_bound(4), acked.end());
  verify_recovered(*store, acked);

  // The surviving prefix is a valid log: new work extends it durably.
  const PutRequest put = put_for(100, rng_seed);
  EXPECT_EQ(store->put(put).status, PutStatus::kStored);
  store->flush_backend();
  store.reset();
  sgx::Platform platform2(fast_model(), as_bytes(dir));
  auto reopened = open_result_store(platform2, dir);
  EXPECT_FALSE(reopened->recovery_info().torn_tail);
  acked.emplace(100, put.entry);
  verify_recovered(*reopened, acked);
}

TEST(RecoveryTest, ReorderedRecordsBreakTheChain) {
  SPEED_SEEDED_RNG(rng, 0xd1ce5eed0004ull);
  const std::string dir = fresh_dir("reorder");
  auto acked = populate(dir, 8, rng_seed);
  const auto frames = wal_frames(dir);
  ASSERT_EQ(frames.size(), 8u);
  // Insert records here are equal-sized (fixed challenge/wrapped-key sizes),
  // so a byte-level swap of records 2 and 3 yields a well-framed log whose
  // only defect is ordering.
  ASSERT_EQ(frames[2].second, frames[3].second);

  const std::string path = dir + "/wal.log";
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const std::size_t frame = 4 + static_cast<std::size_t>(frames[2].second);
  std::vector<unsigned char> a(frame);
  std::vector<unsigned char> b(frame);
  std::fseek(f, static_cast<long>(frames[2].first), SEEK_SET);
  ASSERT_EQ(std::fread(a.data(), 1, frame, f), frame);
  std::fseek(f, static_cast<long>(frames[3].first), SEEK_SET);
  ASSERT_EQ(std::fread(b.data(), 1, frame, f), frame);
  std::fseek(f, static_cast<long>(frames[2].first), SEEK_SET);
  ASSERT_EQ(std::fwrite(b.data(), 1, frame, f), frame);
  std::fseek(f, static_cast<long>(frames[3].first), SEEK_SET);
  ASSERT_EQ(std::fwrite(a.data(), 1, frame, f), frame);
  std::fclose(f);

  sgx::Platform platform(fast_model(), as_bytes(dir));
  auto store = open_result_store(platform, dir);
  EXPECT_TRUE(store->recovery_info().torn_tail);
  EXPECT_EQ(store->recovery_info().replayed_records, 2u);
  acked.erase(acked.lower_bound(2), acked.end());
  verify_recovered(*store, acked);
}

TEST(RecoveryTest, TruncatedTailsDropOnlyTornRecords) {
  SPEED_SEEDED_RNG(rng, 0xd1ce5eed0005ull);
  const std::string dir = fresh_dir("truncate");
  const auto acked = populate(dir, 8, rng_seed);
  const auto frames = wal_frames(dir);
  ASSERT_EQ(frames.size(), 8u);

  // Descending cuts over one directory: inside record 6's bytes, mid record
  // 5, then exactly at record 5's frame boundary.
  const struct {
    std::uint64_t cut;
    std::size_t expect_entries;
  } cases[] = {
      {frames[6].first + 7, 6},
      {frames[5].first + 4 + frames[5].second / 2, 5},
      {frames[5].first, 5},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE("cut at byte " + std::to_string(c.cut));
    std::filesystem::resize_file(dir + "/wal.log", c.cut);
    sgx::Platform platform(fast_model(), as_bytes(dir));
    auto store = open_result_store(platform, dir);
    std::map<std::uint64_t, EntryPayload> expect(
        acked.begin(), std::next(acked.begin(),
                                 static_cast<std::ptrdiff_t>(c.expect_entries)));
    verify_recovered(*store, expect);
  }
}

// ------------------------------------------------------- degrade & ENOSPC

TEST(RecoveryTest, WriteFailureDegradesButKeepsServingReads) {
  SPEED_SEEDED_RNG(rng, 0xd1ce5eed0006ull);
  const std::string dir = fresh_dir("degrade");
  sgx::Platform platform(fast_model(), as_bytes(dir));
  auto fault = std::make_shared<FaultInjectingBackend>(
      std::make_shared<FileBackend>(dir));
  ResultStore store(platform, torture_config(fault));

  std::map<std::uint64_t, EntryPayload> acked;
  for (std::uint64_t i = 0; i < 5; ++i) {
    const PutRequest put = put_for(i, rng_seed);
    ASSERT_EQ(store.put(put).status, PutStatus::kStored);
    acked.emplace(i, put.entry);
  }
  // The very next write fails with nothing forwarded — an ENOSPC analogue.
  fault->fail_after_bytes(fault->bytes_written());
  EXPECT_EQ(store.put(put_for(99, rng_seed)).status, PutStatus::kRejected);
  verify_degraded(store, acked, rng_seed);
  // Sticky: later PUTs are refused without touching the backend again.
  EXPECT_EQ(store.put(put_for(98, rng_seed)).status, PutStatus::kRejected);
  for (const auto& [idx, payload] : acked) {
    GetRequest get;
    get.tag = make_tag(idx + 1);
    ASSERT_TRUE(store.get(get).found);
  }
}

TEST(RecoveryTest, DiskFullGracefulDegrade) {
  const char* base = std::getenv("SPEED_DISKFULL_DIR");
  if (base == nullptr || *base == '\0') {
    GTEST_SKIP() << "set SPEED_DISKFULL_DIR to a small tmpfs to run";
  }
  SPEED_SEEDED_RNG(rng, 0xd1ce5eed0007ull);
  const std::string dir = std::string(base) + "/store";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  sgx::Platform platform(fast_model(), as_bytes(dir));
  FileBackendConfig fcfg;
  fcfg.segment_bytes = 256 * 1024;
  fcfg.fsync_every = 8;
  auto store = open_result_store(platform, dir, StoreConfig{}, fcfg);

  // Fill the tmpfs with ~16 KiB results until the disk pushes back.
  std::map<std::uint64_t, EntryPayload> acked;
  bool rejected = false;
  for (std::uint64_t i = 0; i < 100000 && !rejected; ++i) {
    PutRequest put = put_for(i, rng_seed);
    put.entry.result_ct = rng.bytes(16 * 1024);
    switch (store->put(put).status) {
      case PutStatus::kStored:
        acked.emplace(i, put.entry);
        break;
      case PutStatus::kRejected:
        rejected = true;
        break;
      default:
        FAIL() << "unexpected PUT status";
    }
  }
  ASSERT_TRUE(rejected) << "filesystem at SPEED_DISKFULL_DIR never filled up "
                           "(is it a small tmpfs?)";
  ASSERT_FALSE(acked.empty());
  EXPECT_TRUE(store->degraded());
  EXPECT_GE(store->stats().backend_write_errors, 1u);
  // GETs keep serving everything acknowledged; PUTs stay rejected.
  for (const auto& [idx, payload] : acked) {
    GetRequest get;
    get.tag = make_tag(idx + 1);
    const GetResponse resp = store->get(get);
    ASSERT_TRUE(resp.found) << "idx " << idx;
    EXPECT_EQ(resp.entry, payload);
  }
  EXPECT_EQ(store->put(put_for(999999, rng_seed)).status,
            PutStatus::kRejected);

  // A reopen on the still-full disk loses nothing.
  store.reset();
  sgx::Platform platform2(fast_model(), as_bytes(dir));
  auto reopened = open_result_store(platform2, dir, StoreConfig{}, fcfg);
  verify_recovered(*reopened, acked);
  std::filesystem::remove_all(dir);
}

// ------------------------------------- metadata spill tier under crashes

TEST(RecoveryTortureTest, EveryCrashPointWithColdSpilledMetadata) {
  SPEED_SEEDED_RNG(rng, 0xd1ce5eed000bull);
  const auto stream = workload::zipf_request_stream(16, 24, 0.9, rng_seed);

  // Zero resident-record cache: every entry's full record lives only in the
  // sealed spill tier, so each acked PUT issues three writes (result blob,
  // spill record, WAL record) and every post-recovery GET must fault in.
  StoreConfig cold_cfg = torture_config(nullptr);
  cold_cfg.resident_meta_bytes = 0;

  std::vector<std::uint64_t> sizes;
  std::map<std::uint64_t, EntryPayload> clean_acked;
  {
    sgx::Platform platform(fast_model());
    auto fault = std::make_shared<FaultInjectingBackend>(
        std::make_shared<MemoryBackend>(/*record_wal=*/true));
    StoreConfig cfg = cold_cfg;
    cfg.backend = fault;
    ResultStore store(platform, cfg);
    const RunResult r = run_workload(store, stream, rng_seed);
    ASSERT_FALSE(r.crashed);
    sizes = fault->write_sizes();
    clean_acked = r.acked;
  }
  ASSERT_GE(clean_acked.size(), 8u);
  // blob + spill + WAL per acked PUT
  ASSERT_GE(sizes.size(), 3 * clean_acked.size());

  for (const std::uint64_t budget : crash_budgets(sizes)) {
    SCOPED_TRACE("crash after " + std::to_string(budget) + " bytes");
    sgx::Platform platform(fast_model());
    auto inner = std::make_shared<MemoryBackend>(/*record_wal=*/true);
    std::map<std::uint64_t, EntryPayload> acked;
    {
      auto fault = std::make_shared<FaultInjectingBackend>(inner);
      fault->fail_after_bytes(budget);
      StoreConfig cfg = cold_cfg;
      cfg.backend = fault;
      ResultStore store(platform, cfg);
      RunResult r = run_workload(store, stream, rng_seed);
      ASSERT_TRUE(r.crashed);
      acked = std::move(r.acked);
      verify_degraded(store, acked, rng_seed);
    }
    StoreConfig cfg = cold_cfg;
    cfg.backend = inner;
    ResultStore store(platform, cfg);
    verify_recovered(store, acked);
    EXPECT_EQ(store.put(put_for(424242, rng_seed)).status, PutStatus::kStored);

    // No quota leak with cold records at the crash point: per-app charges
    // after recovery equal exactly the acknowledged bytes (plus the probe
    // PUT just stored).
    std::map<std::uint8_t, std::uint64_t> expect_quota;
    for (const auto& [idx, payload] : acked) {
      expect_quota[static_cast<std::uint8_t>(1 + idx % 3)] +=
          payload.result_ct.size();
    }
    expect_quota[static_cast<std::uint8_t>(1 + 424242 % 3)] +=
        put_for(424242, rng_seed).entry.result_ct.size();
    for (std::uint8_t app = 1; app <= 3; ++app) {
      EXPECT_EQ(store.quota_used(make_app(app)), expect_quota[app])
          << "app " << int(app);
    }

    // No TrustedCharge leak either: drain everything through the corruption
    // path and the resident metadata charge must collapse to the bare slot
    // tables (no cached records, pins, or interned owners left behind).
    for (const auto& [idx, payload] : acked) {
      if (store.corrupt_blob_for_testing(make_tag(idx + 1))) {
        GetRequest get;
        get.tag = make_tag(idx + 1);
        EXPECT_FALSE(store.get(get).found);
      }
    }
    ASSERT_TRUE(store.corrupt_blob_for_testing(make_tag(424243)));
    GetRequest get;
    get.tag = make_tag(424243);
    EXPECT_FALSE(store.get(get).found);
    const auto s = store.stats();
    EXPECT_EQ(s.entries, 0u);
    EXPECT_EQ(s.meta_resident_bytes, s.meta_index_bytes);
    for (std::uint8_t app = 1; app <= 3; ++app) {
      EXPECT_EQ(store.quota_used(make_app(app)), 0u);
    }
  }
}

TEST(RecoveryTest, ColdEntriesSurviveReopenWithZeroCache) {
  SPEED_SEEDED_RNG(rng, 0xd1ce5eed000cull);
  const std::string dir = fresh_dir("cold-reopen");
  const auto acked = populate(dir, 12, rng_seed);

  StoreConfig cold;
  cold.resident_meta_bytes = 0;
  sgx::Platform platform(fast_model(), as_bytes(dir));
  auto store = open_result_store(platform, dir, cold);
  verify_recovered(*store, acked);
  // Every one of those GETs had to read a sealed record back in.
  EXPECT_GE(store->stats().meta_fault_ins, acked.size());
  EXPECT_EQ(store->stats().meta_spills, acked.size());
}

TEST(RecoveryTest, SpillFailureAtRecoveryPinsInsteadOfLosing) {
  SPEED_SEEDED_RNG(rng, 0xd1ce5eed000dull);
  sgx::Platform platform(fast_model());
  auto inner = std::make_shared<MemoryBackend>(/*record_wal=*/true);

  std::map<std::uint64_t, EntryPayload> acked;
  {
    StoreConfig cfg = torture_config(inner);
    ResultStore store(platform, cfg);
    for (std::uint64_t i = 0; i < 10; ++i) {
      const PutRequest put = put_for(i, rng_seed);
      ASSERT_EQ(store.put(put).status, PutStatus::kStored);
      acked.emplace(i, put.entry);
    }
  }

  // Reopen over a backend whose write budget is already exhausted (the
  // ENOSPC-at-recovery analogue): every spill rewrite fails, so every
  // recovered record must be pinned resident — zero acknowledged loss.
  auto fault = std::make_shared<FaultInjectingBackend>(inner);
  fault->fail_after_bytes(0);
  ResultStore store(platform, torture_config(fault));
  EXPECT_EQ(store.recovery_info().inserts, acked.size());
  EXPECT_EQ(store.recovery_info().pinned_records, acked.size());
  EXPECT_EQ(store.stats().meta_pinned_records, acked.size());
  verify_recovered(store, acked);

  // The pinned store serves reads indefinitely; the first runtime write
  // failure degrades it exactly like any other full-disk store.
  EXPECT_EQ(store.put(put_for(777, rng_seed)).status, PutStatus::kRejected);
  EXPECT_TRUE(store.degraded());
  verify_degraded(store, acked, rng_seed);
}

// ------------------------------------------------- compaction & recovery

TEST(RecoveryTest, CompactionReclaimsFullyDeadSegments) {
  SPEED_SEEDED_RNG(rng, 0xd1ce5eed0008ull);
  const std::string dir = fresh_dir("compact");
  sgx::Platform platform(fast_model(), as_bytes(dir));
  FileBackendConfig fcfg;
  fcfg.segment_bytes = 4 * 1024;
  StoreConfig cfg;
  cfg.shards = 1;
  cfg.max_ciphertext_bytes = 16 * 1024;  // heavy eviction churn
  auto store = open_result_store(platform, dir, cfg, fcfg);

  for (std::uint64_t i = 0; i < 60; ++i) {
    PutRequest put = put_for(i, rng_seed);
    put.entry.result_ct = rng.bytes(1024);
    ASSERT_EQ(store->put(put).status, PutStatus::kStored);
  }
  const auto bstats = store->backend().stats();
  EXPECT_GT(store->stats().evictions, 0u);
  EXPECT_GT(bstats.segments_compacted, 0u);
  EXPECT_LT(bstats.segments_created - bstats.segments_compacted, 20u);

  // Everything live before the close is live after the reopen.
  const std::size_t live = store->stats().entries;
  store->flush_backend();
  store.reset();
  sgx::Platform platform2(fast_model(), as_bytes(dir));
  auto reopened = open_result_store(platform2, dir, cfg, fcfg);
  EXPECT_EQ(reopened->stats().entries, live);
  // The most recent insert certainly survived the LRU churn.
  GetRequest get;
  get.tag = make_tag(60);
  EXPECT_TRUE(reopened->get(get).found);
}

TEST(RecoveryTest, RecoveryTimeEvictionReleasesQuota) {
  SPEED_SEEDED_RNG(rng, 0xd1ce5eed0009ull);
  const std::string dir = fresh_dir("shrink");
  const serialize::AppId app = make_app(0x42);
  {
    sgx::Platform platform(fast_model(), as_bytes(dir));
    auto store = open_result_store(platform, dir);
    for (std::uint64_t i = 0; i < 20; ++i) {
      PutRequest put = put_for(i, rng_seed);
      put.requester = app;
      put.entry.result_ct = rng.bytes(2048);
      ASSERT_EQ(store->put(put).status, PutStatus::kStored);
    }
    EXPECT_EQ(store->quota_used(app), 20u * 2048u);
    store->flush_backend();
  }

  // Reopen under a quarter of the footprint: recovery must evict down and
  // release the evicted entries' quota charges (the leak this test pins).
  StoreConfig small;
  small.shards = 1;
  small.max_ciphertext_bytes = 8 * 1024;
  sgx::Platform platform(fast_model(), as_bytes(dir));
  auto store = open_result_store(platform, dir, small);
  EXPECT_EQ(store->recovery_info().inserts, 20u);
  const auto s = store->stats();
  EXPECT_LE(s.ciphertext_bytes, small.max_ciphertext_bytes);
  EXPECT_GE(s.evictions, 16u);
  EXPECT_EQ(store->quota_used(app), s.ciphertext_bytes);

  // The recovery-time erase records are themselves durable: a third open
  // agrees exactly, with no eviction work left to do.
  store->flush_backend();
  store.reset();
  sgx::Platform platform2(fast_model(), as_bytes(dir));
  auto reopened = open_result_store(platform2, dir, small);
  EXPECT_EQ(reopened->stats().entries, s.entries);
  EXPECT_EQ(reopened->stats().evictions, 0u);
  EXPECT_EQ(reopened->quota_used(app), s.ciphertext_bytes);
}

// ------------------------------------------------------------ leak checks

TEST(StoreLeakTest, QuotaAndTrustedChargesDrainToZero) {
  SPEED_SEEDED_RNG(rng, 0xd1ce5eed000aull);
  sgx::Platform platform(fast_model());
  StoreConfig cfg;
  cfg.shards = 1;
  cfg.max_ciphertext_bytes = 8 * 1024;
  cfg.per_app_quota_bytes = 1 << 20;
  ResultStore store(platform, cfg);
  const std::uint64_t epc_baseline = platform.epc().used_bytes();
  const serialize::AppId app = make_app(0x07);

  // Churn far past capacity: every eviction must release its quota charge.
  for (std::uint64_t i = 0; i < 200; ++i) {
    PutRequest put = put_for(i, rng_seed);
    put.requester = app;
    put.entry.result_ct = rng.bytes(1024);
    ASSERT_EQ(store.put(put).status, PutStatus::kStored);
  }
  auto s = store.stats();
  EXPECT_GE(s.evictions, 190u);
  EXPECT_EQ(store.quota_used(app), s.ciphertext_bytes);

  // A rejected PUT must leave no residue either (the zero-entry ledger fix).
  // Scoped: the store's enclave holds a base EPC charge until destruction,
  // which would otherwise show up in the final EPC balance check.
  {
    const serialize::AppId greedy = make_app(0x66);
    StoreConfig tiny;
    tiny.per_app_quota_bytes = 16;
    ResultStore small(platform, tiny);
    EXPECT_EQ(small.put(put_for(1, rng_seed)).status,
              PutStatus::kQuotaExceeded);
    EXPECT_EQ(small.quota_used(make_app(1 % 3 + 1)), 0u);
    EXPECT_EQ(small.quota_used(greedy), 0u);
  }

  // Drain the store via the corruption path (every erase route must release
  // quota and trusted charges) and check all counters return to zero.
  for (std::uint64_t i = 0; i < 200; ++i) {
    if (store.corrupt_blob_for_testing(make_tag(i + 1))) {
      GetRequest get;
      get.tag = make_tag(i + 1);
      EXPECT_FALSE(store.get(get).found);
    }
  }
  s = store.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.ciphertext_bytes, 0u);
  EXPECT_EQ(store.quota_used(app), 0u);
  EXPECT_EQ(platform.epc().used_bytes(), epc_baseline);
}

}  // namespace
}  // namespace speed::store
