// Tests for the canonical codec, Serde, function descriptors, and the wire
// protocol messages.
#include <gtest/gtest.h>

#include <limits>

#include "serialize/codec.h"
#include "serialize/function_descriptor.h"
#include "serialize/rendezvous.h"
#include "serialize/serde.h"
#include "serialize/wire.h"

namespace speed::serialize {
namespace {

TEST(CodecTest, IntegerRoundTrip) {
  Encoder enc;
  enc.u8(0xab);
  enc.u16(0xbeef);
  enc.u32(0xdeadbeef);
  enc.u64(0x0123456789abcdefULL);
  enc.f64(3.14159);
  enc.boolean(true);
  const Bytes data = enc.take();

  Decoder dec(data);
  EXPECT_EQ(dec.u8(), 0xab);
  EXPECT_EQ(dec.u16(), 0xbeef);
  EXPECT_EQ(dec.u32(), 0xdeadbeefu);
  EXPECT_EQ(dec.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(dec.f64(), 3.14159);
  EXPECT_TRUE(dec.boolean());
  dec.expect_done();
}

TEST(CodecTest, ExtremeValues) {
  Encoder enc;
  enc.u64(0);
  enc.u64(std::numeric_limits<std::uint64_t>::max());
  enc.f64(-0.0);
  enc.f64(std::numeric_limits<double>::infinity());
  const Bytes data = enc.take();
  Decoder dec(data);
  EXPECT_EQ(dec.u64(), 0u);
  EXPECT_EQ(dec.u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(dec.f64(), 0.0);
  EXPECT_EQ(dec.f64(), std::numeric_limits<double>::infinity());
}

TEST(CodecTest, VarBytesRoundTrip) {
  Encoder enc;
  enc.var_bytes(to_bytes("hello"));
  enc.var_bytes({});
  enc.str("world");
  const Bytes data = enc.take();
  Decoder dec(data);
  EXPECT_EQ(dec.var_bytes(), to_bytes("hello"));
  EXPECT_EQ(dec.var_bytes(), Bytes{});
  EXPECT_EQ(dec.str(), "world");
}

TEST(CodecTest, TruncationThrows) {
  Encoder enc;
  enc.u64(42);
  const Bytes data = enc.take();
  for (std::size_t cut = 0; cut < data.size(); ++cut) {
    Decoder dec(ByteView(data).first(cut));
    EXPECT_THROW(dec.u64(), SerializationError) << "cut " << cut;
  }
}

TEST(CodecTest, VarBytesLengthLiesThrow) {
  Encoder enc;
  enc.u32(1000);  // claims 1000 bytes follow
  enc.raw(to_bytes("short"));
  Decoder dec(enc.view());
  EXPECT_THROW(dec.var_bytes(), SerializationError);
}

TEST(CodecTest, InvalidBooleanThrows) {
  const Bytes data = {2};
  Decoder dec(data);
  EXPECT_THROW(dec.boolean(), SerializationError);
}

TEST(CodecTest, ExpectDoneCatchesTrailingBytes) {
  const Bytes data = {1, 2, 3};
  Decoder dec(data);
  dec.u8();
  EXPECT_THROW(dec.expect_done(), SerializationError);
}

TEST(SerdeTest, PrimitiveRoundTrips) {
  EXPECT_EQ(deserialize<int>(serialize(-42)), -42);
  EXPECT_EQ(deserialize<std::uint64_t>(serialize<std::uint64_t>(1ull << 63)),
            1ull << 63);
  EXPECT_EQ(deserialize<bool>(serialize(true)), true);
  EXPECT_DOUBLE_EQ(deserialize<double>(serialize(2.5)), 2.5);
  EXPECT_EQ(deserialize<std::string>(serialize(std::string("abc"))), "abc");
  EXPECT_EQ(deserialize<Bytes>(serialize(to_bytes("xyz"))), to_bytes("xyz"));
}

TEST(SerdeTest, ContainerRoundTrips) {
  const std::vector<std::string> v = {"a", "", "ccc"};
  EXPECT_EQ(deserialize<std::vector<std::string>>(serialize(v)), v);

  const std::map<std::string, std::uint32_t> m = {{"dog", 2}, {"cat", 5}};
  EXPECT_EQ((deserialize<std::map<std::string, std::uint32_t>>(serialize(m))), m);

  const std::pair<Bytes, std::uint32_t> p = {to_bytes("data"), 9};
  EXPECT_EQ((deserialize<std::pair<Bytes, std::uint32_t>>(serialize(p))), p);

  const std::vector<std::vector<int>> nested = {{1, 2}, {}, {3}};
  EXPECT_EQ(deserialize<std::vector<std::vector<int>>>(serialize(nested)),
            nested);
}

TEST(SerdeTest, TrailingGarbageRejected) {
  Bytes data = serialize(std::string("ok"));
  data.push_back(0xff);
  EXPECT_THROW(deserialize<std::string>(data), SerializationError);
}

TEST(FunctionDescriptorTest, CanonicalIsInjective) {
  const FunctionDescriptor a{"zlib", "1.2.11", "deflate"};
  const FunctionDescriptor b{"zli", "b1.2.11", "deflate"};
  const FunctionDescriptor c{"zlib", "1.2.11", "inflate"};
  EXPECT_NE(a.canonical(), b.canonical());
  EXPECT_NE(a.canonical(), c.canonical());
  EXPECT_EQ(a.canonical(), FunctionDescriptor(a).canonical());
}

// ------------------------------------------------------------ wire protocol

Tag make_tag(std::uint8_t fill) {
  Tag t;
  t.fill(fill);
  return t;
}

EntryPayload make_entry() {
  EntryPayload e;
  e.challenge = to_bytes("rrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrr");
  e.wrapped_key = to_bytes("kkkkkkkkkkkkkkkk");
  e.result_ct = to_bytes("ciphertext-bytes-here");
  return e;
}

TEST(WireTest, GetRequestRoundTrip) {
  GetRequest req;
  req.tag = make_tag(0x11);
  req.requester = make_tag(0x22);
  const Bytes data = encode_message(req);
  EXPECT_EQ(peek_type(data), MessageType::kGetRequest);
  const auto decoded = std::get<GetRequest>(decode_message(data));
  EXPECT_EQ(decoded.tag, req.tag);
  EXPECT_EQ(decoded.requester, req.requester);
}

TEST(WireTest, GetResponseRoundTripFoundAndMiss) {
  GetResponse hit;
  hit.found = true;
  hit.entry = make_entry();
  const auto decoded_hit =
      std::get<GetResponse>(decode_message(encode_message(hit)));
  EXPECT_TRUE(decoded_hit.found);
  EXPECT_EQ(decoded_hit.entry, hit.entry);

  GetResponse miss;
  const auto decoded_miss =
      std::get<GetResponse>(decode_message(encode_message(miss)));
  EXPECT_FALSE(decoded_miss.found);
  EXPECT_TRUE(decoded_miss.entry.result_ct.empty());
}

TEST(WireTest, PutRequestRoundTrip) {
  PutRequest req;
  req.tag = make_tag(0x33);
  req.requester = make_tag(0x44);
  req.entry = make_entry();
  const auto decoded = std::get<PutRequest>(decode_message(encode_message(req)));
  EXPECT_EQ(decoded.tag, req.tag);
  EXPECT_EQ(decoded.entry, req.entry);
}

TEST(WireTest, PutResponseStatuses) {
  for (const auto status :
       {PutStatus::kStored, PutStatus::kAlreadyPresent,
        PutStatus::kQuotaExceeded, PutStatus::kRejected}) {
    PutResponse resp{status};
    const auto decoded =
        std::get<PutResponse>(decode_message(encode_message(resp)));
    EXPECT_EQ(decoded.status, status);
  }
}

TEST(WireTest, SyncRoundTrip) {
  SyncResponse resp;
  for (int i = 0; i < 3; ++i) {
    SyncEntry e;
    e.tag = make_tag(static_cast<std::uint8_t>(i));
    e.entry = make_entry();
    e.hits = static_cast<std::uint64_t>(100 - i);
    resp.entries.push_back(e);
  }
  const auto decoded =
      std::get<SyncResponse>(decode_message(encode_message(resp)));
  ASSERT_EQ(decoded.entries.size(), 3u);
  EXPECT_EQ(decoded.entries[0].hits, 100u);
  EXPECT_EQ(decoded.entries[2].entry, make_entry());

  SyncRequest req{17};
  EXPECT_EQ(std::get<SyncRequest>(decode_message(encode_message(req))).max_entries,
            17u);
}

TEST(WireTest, HeartbeatRoundTrip) {
  HeartbeatRequest req{0x1234567890abcdefull};
  EXPECT_EQ(std::get<HeartbeatRequest>(decode_message(encode_message(req))).nonce,
            req.nonce);

  HeartbeatResponse resp;
  resp.nonce = req.nonce;
  resp.entries = 42;
  resp.cluster_epoch = 7;
  resp.degraded = true;
  const Bytes data = encode_message(resp);
  EXPECT_EQ(peek_type(data), MessageType::kHeartbeatResponse);
  const auto decoded = std::get<HeartbeatResponse>(decode_message(data));
  EXPECT_EQ(decoded.nonce, resp.nonce);
  EXPECT_EQ(decoded.entries, 42u);
  EXPECT_EQ(decoded.cluster_epoch, 7u);
  EXPECT_TRUE(decoded.degraded);
}

TEST(WireTest, PullRoundTrip) {
  PullRequest req;
  req.after = make_tag(0x5a);
  req.max_entries = 128;
  req.resume = true;
  const auto dreq = std::get<PullRequest>(decode_message(encode_message(req)));
  EXPECT_EQ(dreq.after, req.after);
  EXPECT_EQ(dreq.max_entries, 128u);
  EXPECT_TRUE(dreq.resume);

  PullResponse resp;
  SyncEntry e;
  e.tag = make_tag(0x01);
  e.entry = make_entry();
  e.hits = 9;
  resp.entries.push_back(e);
  resp.next = make_tag(0x01);
  resp.done = false;
  const auto dresp =
      std::get<PullResponse>(decode_message(encode_message(resp)));
  ASSERT_EQ(dresp.entries.size(), 1u);
  EXPECT_EQ(dresp.entries[0].entry, make_entry());
  EXPECT_EQ(dresp.next, resp.next);
  EXPECT_FALSE(dresp.done);
}

TEST(WireTest, PushRoundTrip) {
  PushRequest req;
  for (int i = 0; i < 2; ++i) {
    SyncEntry e;
    e.tag = make_tag(static_cast<std::uint8_t>(i));
    e.entry = make_entry();
    e.hits = static_cast<std::uint64_t>(i);
    req.entries.push_back(e);
  }
  const auto dreq = std::get<PushRequest>(decode_message(encode_message(req)));
  EXPECT_EQ(dreq.entries.size(), 2u);

  PushResponse resp{2};
  EXPECT_EQ(std::get<PushResponse>(decode_message(encode_message(resp))).accepted,
            2u);
}

TEST(WireTest, MembershipRoundTrip) {
  MembershipUpdate up;
  up.epoch = 11;
  up.members = {{"node-a", MemberStatus::kUp},
                {"node-b", MemberStatus::kDown},
                {"node-c", MemberStatus::kUp}};
  const Bytes data = encode_message(up);
  EXPECT_EQ(peek_type(data), MessageType::kMembershipUpdate);
  const auto decoded = std::get<MembershipUpdate>(decode_message(data));
  EXPECT_EQ(decoded.epoch, 11u);
  EXPECT_EQ(decoded.members, up.members);

  MembershipAck ack;
  ack.epoch = 11;
  ack.applied = true;
  const auto dack = std::get<MembershipAck>(decode_message(encode_message(ack)));
  EXPECT_EQ(dack.epoch, 11u);
  EXPECT_TRUE(dack.applied);
}

TEST(WireTest, HostileClusterCountsRejected) {
  // A PushRequest claiming far more entries than the payload could hold
  // must be rejected before any allocation happens.
  Encoder enc;
  enc.u8(static_cast<std::uint8_t>(MessageType::kPushRequest));
  enc.u32(0xffffffffu);
  EXPECT_THROW(decode_message(enc.view()), SerializationError);

  Encoder menc;
  menc.u8(static_cast<std::uint8_t>(MessageType::kMembershipUpdate));
  menc.u64(1);
  menc.u32(0xffffffffu);
  EXPECT_THROW(decode_message(menc.view()), SerializationError);

  // Invalid MemberStatus byte.
  MembershipUpdate up;
  up.epoch = 1;
  up.members = {{"n", MemberStatus::kUp}};
  Bytes bad = encode_message(up);
  bad.back() = 7;
  EXPECT_THROW(decode_message(bad), SerializationError);
}

// --------------------------------------------------------- rendezvous ring

TEST(RendezvousTest, OrderIsDeterministicAndTotal) {
  const std::vector<MemberInfo> members = {
      {"node-0", MemberStatus::kUp},
      {"node-1", MemberStatus::kUp},
      {"node-2", MemberStatus::kUp}};
  const Tag tag = make_tag(0x7e);
  const auto a = rendezvous_order(members, tag);
  const auto b = rendezvous_order(members, tag);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 3u);
  std::vector<std::size_t> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(RendezvousTest, RemovingANodeOnlyReassignsItsTags) {
  const std::vector<MemberInfo> full = {{"node-0", MemberStatus::kUp},
                                        {"node-1", MemberStatus::kUp},
                                        {"node-2", MemberStatus::kUp}};
  // Remove node-1; tags owned by node-0 or node-2 must keep their primary.
  const std::vector<MemberInfo> reduced = {{"node-0", MemberStatus::kUp},
                                           {"node-2", MemberStatus::kUp}};
  int moved = 0, kept = 0;
  for (int i = 0; i < 256; ++i) {
    Tag tag{};
    tag.fill(static_cast<std::uint8_t>(i));
    tag[16] = static_cast<std::uint8_t>(i * 37);  // vary the scored window
    const auto before = rendezvous_order(full, tag);
    const auto after = rendezvous_order(reduced, tag);
    const std::string& owner_before = full[before[0]].name;
    const std::string& owner_after = reduced[after[0]].name;
    if (owner_before == "node-1") {
      ++moved;  // must be reassigned somewhere
    } else {
      EXPECT_EQ(owner_before, owner_after);
      ++kept;
    }
  }
  // With uniform placement each node owns roughly a third.
  EXPECT_GT(moved, 0);
  EXPECT_GT(kept, moved);
}

TEST(RendezvousTest, PlacementIsRoughlyBalanced) {
  const std::vector<MemberInfo> members = {{"node-0", MemberStatus::kUp},
                                           {"node-1", MemberStatus::kUp},
                                           {"node-2", MemberStatus::kUp}};
  std::array<int, 3> owned{};
  for (int i = 0; i < 999; ++i) {
    Tag tag{};
    for (std::size_t b = 0; b < tag.size(); ++b) {
      tag[b] = static_cast<std::uint8_t>((i * 131 + b * 29) & 0xff);
    }
    ++owned[rendezvous_order(members, tag)[0]];
  }
  for (const int count : owned) {
    EXPECT_GT(count, 999 / 6) << "placement badly skewed";
    EXPECT_LT(count, 999 / 2) << "placement badly skewed";
  }
}

TEST(WireTest, MalformedInputsThrow) {
  EXPECT_THROW(decode_message({}), SerializationError);
  const Bytes bad_type = {99};
  EXPECT_THROW(decode_message(bad_type), SerializationError);
  EXPECT_THROW(peek_type({}), SerializationError);
  EXPECT_THROW(peek_type(bad_type), SerializationError);

  // Truncated GetRequest.
  GetRequest req;
  const Bytes data = encode_message(req);
  EXPECT_THROW(decode_message(ByteView(data).first(data.size() - 1)),
               SerializationError);

  // Trailing garbage.
  Bytes extended = data;
  extended.push_back(0);
  EXPECT_THROW(decode_message(extended), SerializationError);

  // Invalid PutStatus byte.
  Bytes bad_status = encode_message(PutResponse{PutStatus::kStored});
  bad_status[1] = 9;
  EXPECT_THROW(decode_message(bad_status), SerializationError);
}

}  // namespace
}  // namespace speed::serialize
