// Compression gateway with master-store replication across machines.
//
// Two bandwidth-optimizing gateways (paper's case study 2, §IV-B Remark)
// run on different physical machines, each with its own local ResultStore.
// A master store periodically collects the popular entries from machine A
// and feeds machine B. Because tags are deterministic and the RCE keywrap
// is keyless, machine B's gateway decrypts machine A's results even though
// the two machines share no keys.
//
//   $ ./compression_gateway
#include <cstdio>

#include "apps/deflate/deflate.h"
#include "runtime/speed.h"
#include "workload/synthetic.h"

using namespace speed;

namespace {

struct Gateway {
  Gateway(sgx::Platform& platform, store::ResultStore& store,
          const std::string& name)
      : enclave(platform.create_enclave(name)),
        connection(store::connect_app(store, *enclave)),
        rt(*enclave, std::move(connection.session_key), std::move(connection.transport)) {
    rt.libraries().register_library(deflate::kLibraryFamily,
                                    deflate::kLibraryVersion,
                                    as_bytes("zlib-compatible deflate v1"));
    compress = std::make_unique<runtime::Deduplicable<Bytes(const Bytes&)>>(
        rt,
        serialize::FunctionDescriptor{deflate::kLibraryFamily,
                                      deflate::kLibraryVersion,
                                      "bytes deflate(bytes)"},
        [this](const Bytes& in) {
          ++executions;
          return deflate::compress(in);
        });
  }

  std::unique_ptr<sgx::Enclave> enclave;
  store::AppConnection connection;
  runtime::DedupRuntime rt;
  std::unique_ptr<runtime::Deduplicable<Bytes(const Bytes&)>> compress;
  int executions = 0;
};

}  // namespace

int main() {
  // Two machines, each with a local store; plus a dedicated master store.
  sgx::Platform machine_a;
  sgx::Platform machine_b;
  sgx::Platform master_machine;
  store::ResultStore store_a(machine_a);
  store::ResultStore store_b(machine_b);
  store::ResultStore master(master_machine);

  Gateway gw_a(machine_a, store_a, "gateway");
  Gateway gw_b(machine_b, store_b, "gateway");

  // Machine A compresses ten documents (some popular web assets).
  std::vector<Bytes> documents;
  for (int i = 0; i < 10; ++i) {
    documents.push_back(to_bytes(workload::synth_text(200 * 1024,
                                                      static_cast<std::uint64_t>(i))));
  }
  std::printf("machine A compresses 10 documents...\n");
  Stopwatch sw;
  std::size_t bytes_out = 0;
  for (const auto& doc : documents) bytes_out += (*gw_a.compress)(doc).size();
  gw_a.rt.flush();
  std::printf("  %.0f ms, ratio %.2fx, %d compressions\n", sw.elapsed_ms(),
              static_cast<double>(documents.size() * 200 * 1024) / static_cast<double>(bytes_out),
              gw_a.executions);

  // Nightly sync: A -> master -> B (entries are self-protecting AEAD
  // ciphertexts, so replication needs no key exchange).
  const std::size_t to_master = store::sync_replica_from_master(master, store_a, 10);
  const std::size_t to_b = store::sync_replica_from_master(store_b, master, 10);
  std::printf("replication: %zu entries to master, %zu entries to machine B\n",
              to_master, to_b);

  // Machine B sees an overlapping document mix.
  std::printf("machine B compresses 10 documents (8 already popular)...\n");
  sw.reset();
  bytes_out = 0;
  for (int i = 0; i < 8; ++i) {
    bytes_out += (*gw_b.compress)(documents[static_cast<std::size_t>(i)]).size();
  }
  for (int i = 0; i < 2; ++i) {
    const Bytes fresh = to_bytes(workload::synth_text(200 * 1024,
                                                      100 + static_cast<std::uint64_t>(i)));
    bytes_out += (*gw_b.compress)(fresh).size();
  }
  gw_b.rt.flush();
  std::printf("  %.0f ms, %d compressions (8 reused across machines)\n",
              sw.elapsed_ms(), gw_b.executions);

  // Round-trip sanity: a reused compressed document still decompresses.
  const Bytes reused = (*gw_b.compress)(documents[0]);
  std::printf("integrity check: reused result decompresses correctly: %s\n",
              deflate::decompress(reused) == documents[0] ? "yes" : "NO");
  return 0;
}
