// Image feature-extraction service: two applications, one shared store.
//
// Demonstrates the paper's headline property — cross-application
// deduplication without a shared key (§III-C). An object-recognition
// service and an image-stitching service both run SIFT on user uploads
// inside their own enclaves. When the same image reaches both services,
// the second one decrypts the first one's stored descriptors instead of
// recomputing, because it owns the same library code and input.
//
//   $ ./image_feature_service
#include <cstdio>

#include "apps/sift/sift.h"
#include "runtime/speed.h"
#include "workload/synthetic.h"

using namespace speed;

namespace {

struct Service {
  Service(sgx::Platform& platform, store::ResultStore& store,
          const std::string& name)
      : enclave(platform.create_enclave(name)),
        connection(store::connect_app(store, *enclave)),
        rt(*enclave, std::move(connection.session_key), std::move(connection.transport)) {
    // Both services link the same trusted SIFT library build.
    rt.libraries().register_library(sift::kLibraryFamily, sift::kLibraryVersion,
                                    as_bytes("siftpp build 2019-03"));
    extract = std::make_unique<
        runtime::Deduplicable<std::vector<sift::Keypoint>(const sift::Image&)>>(
        rt,
        serialize::FunctionDescriptor{sift::kLibraryFamily, sift::kLibraryVersion,
                                      "vector<Keypoint> sift(Image)"},
        [this](const sift::Image& img) {
          ++executions;
          return sift::extract_sift(img);
        });
  }

  std::unique_ptr<sgx::Enclave> enclave;
  store::AppConnection connection;
  runtime::DedupRuntime rt;
  std::unique_ptr<
      runtime::Deduplicable<std::vector<sift::Keypoint>(const sift::Image&)>>
      extract;
  int executions = 0;
};

}  // namespace

int main() {
  sgx::Platform platform;
  store::ResultStore result_store(platform);

  Service recognition(platform, result_store, "object-recognition");
  Service stitching(platform, result_store, "image-stitching");

  // Six images; half of them reach both services (shared uploads).
  std::vector<sift::Image> images;
  for (int i = 0; i < 6; ++i) {
    images.push_back(workload::synth_image(256, 256, 500 + static_cast<std::uint64_t>(i)));
  }

  std::printf("object-recognition processes images 0..5...\n");
  Stopwatch sw;
  std::size_t total_keypoints = 0;
  for (const auto& img : images) {
    total_keypoints += (*recognition.extract)(img).size();
  }
  recognition.rt.flush();
  std::printf("  %zu keypoints across 6 images, %.0f ms, %d extractions\n",
              total_keypoints, sw.elapsed_ms(), recognition.executions);

  std::printf("image-stitching processes images 0..2 (already seen) "
              "and 3 new ones...\n");
  sw.reset();
  std::size_t stitch_keypoints = 0;
  for (int i = 0; i < 3; ++i) {
    stitch_keypoints += (*stitching.extract)(images[static_cast<std::size_t>(i)]).size();
  }
  for (int i = 0; i < 3; ++i) {
    const auto fresh = workload::synth_image(256, 256, 900 + static_cast<std::uint64_t>(i));
    stitch_keypoints += (*stitching.extract)(fresh).size();
  }
  stitching.rt.flush();
  std::printf("  %zu keypoints across 6 images, %.0f ms, %d extractions\n",
              stitch_keypoints, sw.elapsed_ms(), stitching.executions);

  std::printf("\ncross-application reuse: stitching recomputed only %d of 6 "
              "images\n", stitching.executions);
  std::printf("(the 3 shared images were decrypted from the store — no "
              "shared key involved)\n");

  const auto s = result_store.stats();
  std::printf("store: %llu entries, %llu hits, %llu ciphertext bytes\n",
              static_cast<unsigned long long>(s.entries),
              static_cast<unsigned long long>(s.hits),
              static_cast<unsigned long long>(s.ciphertext_bytes));
  return 0;
}
