// Quickstart: make any function deduplicable in two lines.
//
// This is the minimal end-to-end SPEED deployment — one simulated SGX
// platform, one encrypted ResultStore, one application enclave — and the
// 2-line `Deduplicable` conversion of paper Fig. 4 applied to a toy
// function. Run it and watch the second call skip the computation.
//
//   $ ./quickstart
#include <chrono>
#include <cstdio>
#include <thread>

#include "runtime/speed.h"

using namespace speed;

namespace {

/// A deterministic, expensive computation (pretend this is your workload).
Bytes slow_checksum(const Bytes& data) {
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  crypto::Sha256 h;
  for (int round = 0; round < 1000; ++round) h.update(data);
  return crypto::to_bytes(h.finish());
}

}  // namespace

int main() {
  // --- deployment: one machine, one store, one application enclave -------
  sgx::Platform platform;                       // the SGX machine
  store::ResultStore result_store(platform);    // encrypted ResultStore
  auto enclave = platform.create_enclave("quickstart-app");
  auto connection = store::connect_app(result_store, *enclave);
  runtime::DedupRuntime rt(*enclave, std::move(connection.session_key),
                           std::move(connection.transport));

  // The application must own the trusted library providing the function.
  rt.libraries().register_library("quickstart-lib", "1.0",
                                  as_bytes("slow_checksum code v1"));

  // --- the 2-line conversion (paper Fig. 4) -------------------------------
  runtime::Deduplicable<Bytes(const Bytes&)> dedup_checksum(
      rt, {"quickstart-lib", "1.0", "bytes slow_checksum(bytes)"},
      slow_checksum);                            // line 1: wrap
  const Bytes input = to_bytes("the same big input, submitted twice");

  Stopwatch first;
  const Bytes r1 = dedup_checksum(input);        // line 2: use as normal
  std::printf("first call  (computed):     %7.1f ms\n", first.elapsed_ms());

  rt.flush();  // let the asynchronous PUT reach the store

  Stopwatch second;
  const Bytes r2 = dedup_checksum(input);
  std::printf("second call (deduplicated): %7.1f ms\n", second.elapsed_ms());

  std::printf("results identical: %s\n", r1 == r2 ? "yes" : "NO (bug!)");
  std::printf("deduplicated:      %s\n",
              dedup_checksum.last_was_deduplicated() ? "yes" : "no");

  // With the default config the repeat is served straight from the
  // runtime's in-enclave result cache (local hit, zero store round trips);
  // set RuntimeConfig::local_cache = false to see a store hit instead.
  const auto stats = rt.stats();
  std::printf(
      "runtime stats: %llu calls, %llu local hits, %llu store hits, "
      "%llu misses\n",
      static_cast<unsigned long long>(stats.calls),
      static_cast<unsigned long long>(stats.local_hits),
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses));
  const auto sstats = result_store.stats();
  std::printf("store stats:   %llu entries, %llu ciphertext bytes\n",
              static_cast<unsigned long long>(sstats.entries),
              static_cast<unsigned long long>(sstats.ciphertext_bytes));
  return 0;
}
