// Separate-process style deployment: the ResultStore served over TCP.
//
// The paper runs applications and the store as separate components (and
// sketches a master store on a dedicated server). This example starts a
// StoreTcpServer on a loopback port and connects two application runtimes
// through real sockets: attested handshake first, then secure-channel
// frames carrying the GET/PUT protocol. The dedup semantics are identical
// to the in-process deployment.
//
// The clients connect through connect_tcp_app_resilient — the production
// posture: round trips are deadline-bounded and a ResilientTransport
// redials + re-attests on failure, so when the store goes down the
// applications keep answering from local compute (fail-open) instead of
// surfacing socket errors.
//
//   $ ./tcp_deployment              # in-memory store, restarts start cold
//   $ ./tcp_deployment /var/speed   # durable store, restarts replay the WAL
#include <cstdio>
#include <memory>
#include <string>

#include "apps/deflate/container.h"
#include "runtime/speed.h"
#include "store/file_backend.h"
#include "store/tcp_server.h"
#include "telemetry/exposition.h"
#include "workload/synthetic.h"

using namespace speed;

int main(int argc, char** argv) {
  // Optional durable deployment: a directory argument persists the store
  // (blob segments + sealed metadata WAL, docs/PROTOCOL.md §7). The
  // platform's hardware key is derived from the directory so sealed WAL
  // records written before a restart stay readable after it.
  const std::string store_dir = argc > 1 ? argv[1] : "";
  auto platform_ptr =
      store_dir.empty()
          ? std::make_unique<sgx::Platform>()
          : std::make_unique<sgx::Platform>(sgx::CostModel{},
                                            as_bytes(store_dir));
  sgx::Platform& platform = *platform_ptr;
  // Concurrent deployment posture: the TCP server runs one thread per
  // connection, so stripe the store's dictionary across 8 tag-addressed
  // shards and let those threads GET/PUT in parallel.
  store::StoreConfig store_cfg;
  store_cfg.shards = 8;
  std::unique_ptr<store::ResultStore> store_ptr =
      store_dir.empty()
          ? std::make_unique<store::ResultStore>(platform, store_cfg)
          : store::open_result_store(platform, store_dir, store_cfg);
  store::ResultStore& result_store = *store_ptr;
  if (!store_dir.empty()) {
    const auto& rec = result_store.recovery_info();
    std::printf("durable store at %s: recovered %llu entries in %llu ms\n",
                store_dir.c_str(),
                static_cast<unsigned long long>(rec.inserts),
                static_cast<unsigned long long>(rec.recovery_ms));
  }
  // Admin port 0 = ephemeral; serves /metrics (Prometheus), /snapshot.json,
  // /traces.json, and /healthz for the whole process.
  store::StoreTcpServer server(result_store, /*port=*/0, /*admin_port=*/0);
  std::printf("ResultStore listening on 127.0.0.1:%u\n", server.port());
  std::printf("telemetry:   curl http://127.0.0.1:%u/metrics\n",
              server.admin_port());

  auto make_client = [&](const char* name) {
    auto enclave = platform.create_enclave(name);
    auto conn = store::connect_tcp_app_resilient(
        *enclave, result_store.enclave().measurement(), "127.0.0.1",
        server.port(), net::ResilienceConfig{}, /*deadline_ms=*/2000);
    auto rt = std::make_unique<runtime::DedupRuntime>(
        *enclave, std::move(conn.session_key), std::move(conn.transport));
    rt->libraries().register_library(deflate::kLibraryFamily,
                                     deflate::kLibraryVersion,
                                     as_bytes("gzip-capable deflate v1"));
    return std::make_pair(std::move(enclave), std::move(rt));
  };

  auto [enclave_a, rt_a] = make_client("web-frontend");
  auto [enclave_b, rt_b] = make_client("cdn-edge");
  std::printf("two clients connected (attested handshakes done)\n");

  int exec_a = 0, exec_b = 0;
  runtime::Deduplicable<Bytes(const Bytes&)> gzip_a(
      *rt_a,
      {deflate::kLibraryFamily, deflate::kLibraryVersion, "bytes gzip(bytes)"},
      [&](const Bytes& in) {
        ++exec_a;
        return deflate::gzip_compress(in);
      });
  runtime::Deduplicable<Bytes(const Bytes&)> gzip_b(
      *rt_b,
      {deflate::kLibraryFamily, deflate::kLibraryVersion, "bytes gzip(bytes)"},
      [&](const Bytes& in) {
        ++exec_b;
        return deflate::gzip_compress(in);
      });

  // The frontend compresses five popular assets; the edge node later sees
  // the same assets and reuses the frontend's results over the wire.
  std::vector<Bytes> assets;
  for (int i = 0; i < 5; ++i) {
    assets.push_back(to_bytes(workload::synth_text(100 * 1024,
                                                   static_cast<std::uint64_t>(i))));
  }
  Stopwatch sw;
  for (const auto& asset : assets) gzip_a(asset);
  rt_a->flush();
  std::printf("frontend: 5 assets gzipped in %.0f ms (%d executed)\n",
              sw.elapsed_ms(), exec_a);

  sw.reset();
  Bytes last;
  for (const auto& asset : assets) last = gzip_b(asset);
  std::printf("edge:     5 assets gzipped in %.0f ms (%d executed, %d reused)\n",
              sw.elapsed_ms(), exec_b, 5 - exec_b);

  std::printf("reused gzip stream is valid: %s\n",
              deflate::gzip_decompress(last) == assets.back() ? "yes" : "NO");

  const auto stats = result_store.stats();
  std::printf("store: %llu entries, %llu hits, %llu puts over TCP; "
              "%llu connections\n",
              static_cast<unsigned long long>(stats.entries),
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.put_requests),
              static_cast<unsigned long long>(server.connections_accepted()));

  // A scrape of the admin endpoint sees every instrumented component in
  // the process: runtime outcomes, per-shard store series, channel frame
  // counts, enclave transitions/EPC.
  const std::string page = telemetry::render_prometheus();
  int series = 0;
  for (const char c : page) series += c == '\n' ? 1 : 0;
  std::printf("admin /metrics: %d lines (runtime/store/channel/enclave)\n",
              series);

  // Fail-open: kill the store and keep serving. The edge node's calls
  // degrade to local compute — no exception ever reaches the application.
  server.stop();
  std::printf("store stopped; edge keeps serving...\n");
  const Bytes fresh = to_bytes(workload::synth_text(100 * 1024, 99));
  const Bytes degraded = gzip_b(fresh);
  std::printf("degraded gzip stream is valid: %s (%llu degraded calls)\n",
              deflate::gzip_decompress(degraded) == fresh ? "yes" : "NO",
              static_cast<unsigned long long>(rt_b->stats().degraded_calls));
  return 0;
}
