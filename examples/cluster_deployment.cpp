// Replicated cluster deployment: the dedup dictionary spread over three
// store nodes with client-side failover (docs/PROTOCOL.md §8).
//
// Results are rendezvous-hashed to a primary plus one replica; a PUT is
// acknowledged only once both copies are placed, so killing any single node
// loses no acknowledged result. The example demonstrates the whole fault
// cycle live: dedup across two applications, a node killed mid-traffic
// (GETs fail over to the surviving replica), the cluster degrading to
// local compute when every node is down, and a restarted node re-attesting
// and pulling its ring share back before serving again.
//
//   $ ./cluster_deployment
#include <cstdio>
#include <memory>

#include "runtime/speed.h"
#include "workload/synthetic.h"

using namespace speed;

namespace {

constexpr char kFamily[] = "example-analytics";
constexpr char kVersion[] = "1.0";

/// A deliberately slow deterministic "analytics" pass, the deduplicable
/// unit of work (any pure function of its input bytes qualifies).
Bytes analyze(ByteView input) {
  std::uint64_t acc = 0xcbf29ce484222325ull;
  for (int round = 0; round < 2000; ++round) {
    for (const std::uint8_t b : input) {
      acc = (acc ^ b) * 0x100000001b3ull;
    }
  }
  Bytes out(8);
  for (std::size_t i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(acc >> (8 * i));
  }
  return out;
}

}  // namespace

int main() {
  sgx::Platform platform;

  // Three store nodes, one replica per entry: every acknowledged result
  // survives any single node failure.
  store::InprocClusterConfig cluster_cfg;
  cluster_cfg.nodes = 3;
  cluster_cfg.cluster.replicas = 1;
  store::InprocCluster cluster(platform, cluster_cfg);
  std::printf("cluster: %zu nodes, %zu replica(s) per entry\n",
              cluster.node_count(), cluster_cfg.cluster.replicas);

  // Two independent applications share the cluster — the paper's
  // cross-application dedup scenario.
  auto make_app = [&](const char* name) {
    auto enclave = platform.create_enclave(name);
    // Local in-enclave caching off for the demo: every call visibly routes
    // through the cluster walk (production keeps it on).
    runtime::RuntimeConfig rt_cfg;
    rt_cfg.local_cache = false;
    auto rt = std::make_unique<runtime::DedupRuntime>(
        *enclave, cluster.connect(*enclave), rt_cfg);
    rt->libraries().register_library(kFamily, kVersion,
                                     as_bytes("analytics kernel v1"));
    return std::make_pair(std::move(enclave), std::move(rt));
  };
  auto [enclave_a, rt_a] = make_app("web-frontend");
  auto [enclave_b, rt_b] = make_app("batch-worker");
  const auto fn_a = rt_a->resolve({kFamily, kVersion, "Bytes analyze(Bytes)"});
  const auto fn_b = rt_b->resolve({kFamily, kVersion, "Bytes analyze(Bytes)"});

  const Bytes request = to_bytes("GET /report?window=24h");
  const auto run = [&](runtime::DedupRuntime& rt, const auto& fn,
                       const char* who) {
    const auto outcome =
        rt.execute(fn, request, [&] { return analyze(request); });
    std::printf("  %-12s -> %s\n", who,
                outcome.deduplicated ? "deduplicated (served from cluster)"
                                     : "computed locally");
  };

  std::printf("\n--- healthy: cross-application dedup ---\n");
  run(*rt_a, fn_a, "web-frontend");  // miss: computes, PUT to both owners
  run(*rt_b, fn_b, "batch-worker");  // hit: B never ran analyze()
  rt_a->flush();
  rt_b->flush();

  std::printf("\n--- node 1 killed mid-traffic ---\n");
  cluster.kill(1);
  run(*rt_b, fn_b, "batch-worker");  // still a hit: replica serves the GET

  std::printf("\n--- total outage: every node down ---\n");
  cluster.kill(0);
  cluster.kill(2);
  run(*rt_a, fn_a, "web-frontend");  // degrades to local compute, no error
  std::printf("  degraded calls so far: %llu\n",
              static_cast<unsigned long long>(rt_a->stats().degraded_calls));

  std::printf("\n--- recovery: restart, re-attest, rejoin ---\n");
  for (std::size_t node = 0; node < cluster.node_count(); ++node) {
    if (!cluster.restart(node)) {
      std::printf("  node %zu failed re-attestation\n", node);
      return 1;
    }
  }
  // A restarted node comes back EMPTY; rejoin pulls its rendezvous share
  // back from the live peers (resumable bulk sync), and an anti-entropy
  // round re-replicates anything placed sloppily during the outage.
  const std::size_t pulled = cluster.rejoin(1);
  cluster.anti_entropy_round();
  std::printf("  node 1 rejoined, pulled %zu entries\n", pulled);
  run(*rt_a, fn_a, "web-frontend");  // repopulates the wiped dictionary
  rt_a->flush();
  run(*rt_b, fn_b, "batch-worker");  // dedup is back across applications

  const auto stats = rt_a->cluster()->stats();
  std::printf("\nclient walk stats: %llu GETs, %llu PUTs, %llu failovers, "
              "%llu unavailable\n",
              static_cast<unsigned long long>(stats.gets),
              static_cast<unsigned long long>(stats.puts),
              static_cast<unsigned long long>(stats.failovers),
              static_cast<unsigned long long>(stats.unavailable));
  return 0;
}
