// Encrypted block store with chunk-level dedup — the fifth case study.
//
// A storage service keeps client blobs encrypted end-to-end in the
// ResultStore, yet a re-upload of an *edited* blob only transfers the
// chunks the edit touched: content-defined chunking resynchronizes around
// insertions, so the per-call dedup cliff ("one byte changed, everything
// re-uploaded") disappears. This example stores a document, inserts a
// paragraph near the front — the worst case for fixed-size chunking — and
// stores it again, then prints how many bytes actually moved.
//
//   $ ./blockstore_service
#include <cstdio>
#include <string>

#include "apps/blockstore/blockstore.h"
#include "runtime/speed.h"
#include "workload/synthetic.h"

using namespace speed;

int main() {
  // --- deployment: one machine, one store, one application enclave -------
  sgx::Platform platform;
  store::ResultStore result_store(platform);
  auto enclave = platform.create_enclave("blockstore-app");
  auto connection = store::connect_app(result_store, *enclave);
  runtime::DedupRuntime rt(*enclave, std::move(connection.session_key),
                           std::move(connection.transport));

  // --- the service: a named-object facade over one StreamSession ---------
  blockstore::BlockStore blobs(rt);

  const std::string v1 = workload::synth_text(512 * 1024, /*seed=*/42);
  std::string v2 = v1;
  v2.insert(1000, workload::synth_text(2048, /*seed=*/43));  // early edit

  blobs.put("report-v1", as_bytes(v1));
  const auto after_v1 = rt.stats();
  blobs.put("report-v2", as_bytes(v2));
  const auto after_v2 = rt.stats();

  const auto fresh_chunks =
      (after_v2.stream_chunks - after_v1.stream_chunks) -
      (after_v2.stream_chunk_hits - after_v1.stream_chunk_hits);
  std::printf("v1: %zu KiB stored as %llu chunks\n", v1.size() / 1024,
              static_cast<unsigned long long>(after_v1.stream_chunks));
  std::printf("v2: %zu KiB stored, %llu of %llu chunks were new\n",
              v2.size() / 1024, static_cast<unsigned long long>(fresh_chunks),
              static_cast<unsigned long long>(after_v2.stream_chunks -
                                              after_v1.stream_chunks));
  std::printf("bytes deduplicated on the v2 upload: %llu\n",
              static_cast<unsigned long long>(after_v2.stream_bytes_deduped -
                                              after_v1.stream_bytes_deduped));

  // Reads need only the name (the service holds the capability). A handle
  // exported with export_object() would let another client read the blob
  // without the service in the loop.
  const auto round_trip = blobs.get("report-v2");
  std::printf("get(report-v2) returned exact bytes: %s\n",
              round_trip.has_value() && *round_trip == to_bytes(v2)
                  ? "yes"
                  : "NO (bug!)");

  const auto sstats = result_store.stats();
  std::printf("store holds %llu entries (%llu ciphertext bytes) for %zu KiB\n",
              static_cast<unsigned long long>(sstats.entries),
              static_cast<unsigned long long>(sstats.ciphertext_bytes),
              (v1.size() + v2.size()) / 1024);
  return 0;
}
