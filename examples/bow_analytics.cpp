// Incremental BoW analytics over a growing crawl (paper case study 4).
//
// A crawler delivers web-page batches; an analytics enclave computes
// bag-of-words histograms per batch on the mini-MapReduce framework. The
// crawl is incremental: every round re-delivers old batches plus one new
// batch (the paper's "incrementally updated datasets ... constantly being
// processed by the same computing tasks"). SPEED turns the re-processing
// into store hits.
//
//   $ ./bow_analytics
#include <cstdio>

#include "apps/mapreduce/bow.h"
#include "runtime/speed.h"
#include "workload/synthetic.h"

using namespace speed;

int main() {
  constexpr std::size_t kBatches = 8;
  constexpr std::size_t kPagesPerBatch = 40;
  constexpr std::size_t kRounds = 4;

  sgx::Platform platform;
  store::ResultStore result_store(platform);
  auto enclave = platform.create_enclave("bow-analytics");
  auto connection = store::connect_app(result_store, *enclave);
  runtime::DedupRuntime rt(*enclave, std::move(connection.session_key),
                           std::move(connection.transport));
  rt.libraries().register_library(mapreduce::kLibraryFamily,
                                  mapreduce::kLibraryVersion,
                                  as_bytes("mapreduce lib v1"));

  std::size_t jobs_executed = 0;
  runtime::Deduplicable<mapreduce::WordHistogram(const std::vector<std::string>&)>
      dedup_bow(rt,
                {mapreduce::kLibraryFamily, mapreduce::kLibraryVersion,
                 "histogram bow_mapper(docs)"},
                [&](const std::vector<std::string>& docs) {
                  ++jobs_executed;
                  return mapreduce::bag_of_words(docs);
                });

  // Pre-generate the crawl batches.
  std::vector<std::vector<std::string>> batches;
  for (std::size_t b = 0; b < kBatches; ++b) {
    std::vector<std::string> docs;
    for (std::size_t p = 0; p < kPagesPerBatch; ++p) {
      docs.push_back(workload::synth_web_page(2048, b * 1000 + p));
    }
    batches.push_back(std::move(docs));
  }

  // Each round processes batches [0, 4 + round): old ones repeat.
  mapreduce::WordHistogram global;
  for (std::size_t round = 0; round < kRounds; ++round) {
    const std::size_t visible = 4 + round;
    Stopwatch sw;
    std::size_t batch_jobs_before = jobs_executed;
    global.clear();
    for (std::size_t b = 0; b < visible && b < kBatches; ++b) {
      for (const auto& [word, count] : dedup_bow(batches[b])) {
        global[word] += count;
      }
    }
    rt.flush();
    std::printf("round %zu: %2zu batches, %zu MapReduce jobs actually ran, "
                "%6.1f ms, vocabulary %zu\n",
                round + 1, visible, jobs_executed - batch_jobs_before,
                sw.elapsed_ms(), global.size());
  }

  const auto stats = rt.stats();
  std::printf("\ntotals: %llu batch computations requested, %zu executed, "
              "%llu served from the store\n",
              static_cast<unsigned long long>(stats.calls), jobs_executed,
              static_cast<unsigned long long>(stats.hits));

  // Show a few of the most frequent words as a sanity check.
  std::vector<std::pair<std::uint64_t, std::string>> top;
  for (const auto& [word, count] : global) top.emplace_back(count, word);
  std::sort(top.rbegin(), top.rend());
  std::printf("top words:");
  for (std::size_t i = 0; i < 5 && i < top.size(); ++i) {
    std::printf(" %s(%llu)", top[i].second.c_str(),
                static_cast<unsigned long long>(top[i].first));
  }
  std::printf("\n");
  return 0;
}
