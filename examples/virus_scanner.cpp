// Virus scanner: the paper's motivating scenario (§I — "pattern matching
// may occur repeatedly over redundant files in an online virus scanner").
//
// An SGX-hosted scanning service receives files from many clients; popular
// files are submitted again and again (Zipf-distributed, like VirusTotal's
// workload). Each scan runs a Snort-like rule set over the file inside the
// enclave. With SPEED, repeated files cost one store lookup instead of a
// full rescan.
//
//   $ ./virus_scanner
#include <cstdio>

#include "apps/match/ruleset.h"
#include "runtime/speed.h"
#include "workload/synthetic.h"

using namespace speed;

int main() {
  constexpr std::size_t kRules = 800;
  constexpr std::size_t kDistinctFiles = 60;
  constexpr std::size_t kSubmissions = 400;

  // --- deployment ---------------------------------------------------------
  sgx::Platform platform;
  store::ResultStore result_store(platform);
  auto enclave = platform.create_enclave("virus-scanner");
  auto connection = store::connect_app(result_store, *enclave);
  runtime::DedupRuntime rt(*enclave, std::move(connection.session_key),
                           std::move(connection.transport));
  rt.libraries().register_library(match::kLibraryFamily, match::kLibraryVersion,
                                  as_bytes("pcre 8.41-compatible engine"));

  // --- the scanning engine ------------------------------------------------
  const auto rules = workload::synth_ruleset(kRules, 2024, 0.1, 0.02);
  const match::RuleSet ruleset(rules);
  std::size_t scans_executed = 0;

  runtime::Deduplicable<std::vector<std::uint32_t>(const Bytes&)> dedup_scan(
      rt,
      {match::kLibraryFamily, match::kLibraryVersion,
       "vector<u32> pcre_exec(file)"},
      [&](const Bytes& file) {
        ++scans_executed;
        return ruleset.scan_sequential(file);
      });

  // --- the workload: Zipf-skewed resubmissions of 60 distinct files -------
  std::vector<Bytes> files;
  const auto trace =
      workload::synth_packet_trace(kDistinctFiles, 4096, rules, 0.2, 7);
  for (const auto& p : trace) files.push_back(p.payload);
  const auto stream =
      workload::zipf_request_stream(kDistinctFiles, kSubmissions, 1.1, 11);

  std::printf("scanning %zu submissions of %zu distinct files against %zu rules...\n",
              kSubmissions, kDistinctFiles, kRules);
  Stopwatch sw;
  std::size_t infected = 0;
  for (const std::size_t file_idx : stream) {
    const auto alerts = dedup_scan(files[file_idx]);
    infected += !alerts.empty();
  }
  rt.flush();
  const double with_speed_ms = sw.elapsed_ms();

  // Reference: the same workload without deduplication.
  sw.reset();
  std::size_t infected_ref = 0;
  for (const std::size_t file_idx : stream) {
    infected_ref += enclave->ecall([&] {
      return ruleset.scan_sequential(files[file_idx]).empty() ? 0 : 1;
    });
  }
  const double without_speed_ms = sw.elapsed_ms();

  const auto stats = rt.stats();
  std::printf("\nflagged submissions:    %zu (reference run agrees: %s)\n",
              infected, infected == infected_ref ? "yes" : "NO");
  std::printf("actual scans executed:  %zu of %zu submissions\n",
              scans_executed, kSubmissions);
  std::printf("store hit rate:         %.1f%%\n",
              100.0 * static_cast<double>(stats.hits) / static_cast<double>(stats.calls));
  std::printf("with SPEED:             %8.1f ms\n", with_speed_ms);
  std::printf("without SPEED:          %8.1f ms\n", without_speed_ms);
  std::printf("workload speedup:       %.1fx\n", without_speed_ms / with_speed_ms);
  return 0;
}
