#!/usr/bin/env python3
"""secretflow: the SPEED secret-flow boundary linter.

Enforces the taint-typing contract of src/common/secret.h at the places the
type system cannot reach (C boundary headers, logging macros, the audit
manifest):

  SF001  memcmp over tag/MAC/key byte ranges (use speed::ct_equal)
  SF002  operator==/!= on tag/MAC/digest byte ranges (use speed::ct_equal)
  SF003  secret types or raw escapes in untrusted-boundary surfaces
         (src/capi/*, the sgx Report struct)
  SF004  secret types or reveals in telemetry/exposition or on logging lines;
         also chunk/stream tags and manifest plaintext (content hashes of
         client data) in telemetry or on logging lines
  SF005  libc rand()/srand() (use crypto::Drbg)
  SF006  reveal_for/release_for without a literal Purpose::of, or with a
         (file, purpose) pair missing from docs/SECRET_AUDIT.md; also stale
         manifest entries that no longer match any reveal site

Suppression: append `// secretflow-allow: SFNNN <reason>` to the offending
line (or the line above it). Suppressions are deliberate, greppable, and
should be rare.

Engines: the default `regex` engine needs only the standard library and is
what CI and local hooks run. `--engine clang` uses libclang's token stream
for exact comment/string classification when the Python bindings are
installed; it applies the same rules and is never required.

Usage:
  tools/lint/secretflow.py --check src/            # lint the tree, exit 1 on findings
  tools/lint/secretflow.py --fixtures tools/lint/fixtures   # self-test
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_MANIFEST = REPO_ROOT / "docs" / "SECRET_AUDIT.md"

SOURCE_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}

# Identifier fragments that mark a byte range as authenticator/key material.
SECRETISH = r"(?:mac|auth_tag|digest|session_key|seal_key|private_key|wrapped_key|secret|hmac)"

# Streaming-dedup identifiers: chunk/stream tags are content hashes of client
# plaintext and the manifest plaintext lists them. Not key material — equality
# compares are fine — but their values fingerprint user data, so they must
# never be exported through telemetry or logging sinks (SF004). Derived
# scalars (sizes, counts) must be copied to a neutral local before logging.
DEDUPISH = r"(?:chunk_tag|stream_tag|chunk_hash|manifest_plain)"

# Logging/stream sink syntax shared by the SF004 checks.
LOG_SINK_RE = re.compile(
    r"<<|\bprintf\s*\(|\bfprintf\s*\(|\bsnprintf\s*\(|\bLOG\b|std::format\s*\("
)

ALLOW_RE = re.compile(r"//\s*secretflow-allow:\s*(SF\d{3})")
EXPECT_RE = re.compile(r"//\s*EXPECT:\s*(SF\d{3})")
LINT_AS_RE = re.compile(r"//\s*lint-as:\s*(\S+)")

REVEAL_RE = re.compile(
    r"\b(?:reveal_for|release_for)\s*\(\s*(?:speed::)?(?:secret::)?Purpose::of\(\s*\"([a-z0-9_]+)\"",
    re.S,
)
REVEAL_ANY_RE = re.compile(r"\b(reveal_for|release_for)\s*\(")
# Parameter declarations inside secret.h itself, not call sites.
REVEAL_DECL_RE = re.compile(r"^\s*(?:\[\[maybe_unused\]\]\s*)?Purpose\s+\w*\s*\)")

MANIFEST_ROW_RE = re.compile(r"`(src/[\w./-]+)`\s*\|\s*`([a-z0-9_]+)`")


@dataclass
class Finding:
    path: str       # repo-relative (or lint-as) path
    line: int       # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def strip_comments_and_strings(line: str) -> tuple[str, str]:
    """Return (code, full) where `code` has comments and string/char literal
    contents blanked out (delimiters kept) so rules don't fire on prose."""
    out = []
    i, n = 0, len(line)
    state = None  # None | '"' | "'"
    while i < n:
        c = line[i]
        if state is None:
            if c == '/' and i + 1 < n and line[i + 1] == '/':
                break  # rest of line is a comment
            if c == '/' and i + 1 < n and line[i + 1] == '*':
                # Blank until close (single-line handling; multi-line block
                # comments are rare in this codebase and caught by review).
                end = line.find("*/", i + 2)
                if end < 0:
                    break
                i = end + 2
                continue
            if c in ('"', "'"):
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        else:
            if c == '\\':
                i += 2
                continue
            if c == state:
                state = None
                out.append(c)
            i += 1
    return "".join(out), line


def collect_allows(lines: list[str]) -> dict[int, set[str]]:
    """Map line number -> rules suppressed there (same line or line above)."""
    allows: dict[int, set[str]] = {}
    for idx, line in enumerate(lines, start=1):
        for m in ALLOW_RE.finditer(line):
            allows.setdefault(idx, set()).add(m.group(1))
            allows.setdefault(idx + 1, set()).add(m.group(1))
    return allows


def report_struct_extent(lines: list[str]) -> tuple[int, int] | None:
    """1-based [start, end] of `struct Report { ... };` if present."""
    depth = 0
    start = None
    for idx, line in enumerate(lines, start=1):
        code, _ = strip_comments_and_strings(line)
        if start is None:
            if re.search(r"\bstruct\s+Report\b", code):
                start = idx
                depth = 0
        if start is not None:
            depth += code.count("{") - code.count("}")
            if "{" in code or idx > start:
                if depth <= 0 and ("}" in code):
                    return (start, idx)
    return None


CMP_LHS_RE = re.compile(
    rf"(?:\.|\b){SECRETISH}\b(?:\s*\.\s*(?:data|bytes)\s*\(\s*\))?\s*[=!]="
)
CMP_RHS_RE = re.compile(rf"[=!]=\s*[\w.>-]*(?:\.|\b){SECRETISH}\b")
CMP_EXCLUDE_RE = re.compile(
    r"operator\s*==|=\s*delete|nullptr|\.size\s*\(|\.empty\s*\(|ct_equal"
)


def lint_file(pretend_path: str, text: str, manifest: set[tuple[str, str]],
              reveal_sites: list[tuple[str, str]] | None = None) -> list[Finding]:
    """Run all rules over one file. `pretend_path` is repo-relative."""
    findings: list[Finding] = []
    lines = text.splitlines()
    allows = collect_allows(lines)
    in_src = pretend_path.startswith("src/")
    is_boundary_capi = pretend_path.startswith("src/capi/")
    is_telemetry = pretend_path.startswith("src/telemetry/")
    is_secret_header = pretend_path == "src/common/secret.h"
    report_extent = (
        report_struct_extent(lines) if pretend_path == "src/sgx/enclave.h"
        or "enclave" in Path(pretend_path).name else None
    )

    def add(lineno: int, rule: str, message: str) -> None:
        if rule in allows.get(lineno, set()):
            return
        findings.append(Finding(pretend_path, lineno, rule, message))

    crypto_module = any(
        pretend_path.startswith(p)
        for p in ("src/crypto/", "src/mle/", "src/net/", "src/sgx/")
    )

    for idx, raw in enumerate(lines, start=1):
        code, _ = strip_comments_and_strings(raw)
        if not code.strip():
            continue

        # SF001: memcmp over authenticator/key material.
        if re.search(r"\bmemcmp\s*\(", code):
            if re.search(rf"(?:\.|\b){SECRETISH}\b", code) or crypto_module:
                add(idx, "SF001",
                    "memcmp over tag/MAC/key bytes is not constant-time; "
                    "use speed::ct_equal")

        # SF002: ==/!= over authenticator byte ranges.
        if ("==" in code or "!=" in code) and not CMP_EXCLUDE_RE.search(code):
            if CMP_LHS_RE.search(code) or CMP_RHS_RE.search(code):
                add(idx, "SF002",
                    "operator==/!= over tag/MAC/key bytes is not "
                    "constant-time; use speed::ct_equal")

        # SF003: secrets must not appear on untrusted-boundary surfaces.
        if is_boundary_capi and re.search(r"\bsecret::|reveal_for|release_for",
                                          code):
            add(idx, "SF003",
                "secret types/escapes must not cross the C API boundary; "
                "convert via an audited release before src/capi/")
        if report_extent and report_extent[0] <= idx <= report_extent[1]:
            if re.search(r"\bsecret::", code):
                add(idx, "SF003",
                    "struct Report crosses to the untrusted host; it must "
                    "carry only plain bytes")

        # SF004: secrets must not reach telemetry or logging sinks.
        if is_telemetry and re.search(r"\bsecret::|reveal_for|release_for",
                                      code):
            add(idx, "SF004",
                "telemetry/exposition must never see secret types or "
                "revealed bytes")
        if re.search(r"reveal_for|release_for", code) and LOG_SINK_RE.search(
                code):
            add(idx, "SF004",
                "revealed secret bytes on a logging/stream line")

        # SF004 (streaming): chunk hashes and manifest plaintext fingerprint
        # client data; they must never reach telemetry labels or log lines.
        if re.search(rf"(?:\.|\b){DEDUPISH}\b", code):
            if is_telemetry:
                add(idx, "SF004",
                    "telemetry must never see chunk/stream tags or manifest "
                    "plaintext — they fingerprint client data")
            elif LOG_SINK_RE.search(code):
                add(idx, "SF004",
                    "chunk/stream tag or manifest plaintext on a "
                    "logging/stream line fingerprints client data")

        # SF005: libc RNG.
        if re.search(r"(?<![\w.>])s?rand\s*\(", code):
            add(idx, "SF005",
                "libc rand()/srand() is not a CSPRNG; use crypto::Drbg")

    # SF006: audited escapes. Scan the whole text so call sites split across
    # lines (release_for(\n  Purpose::of("..."))) are still attributed.
    if in_src and not is_secret_header:
        audited_spans: list[tuple[int, int, str]] = []
        for m in REVEAL_RE.finditer(text):
            lineno = text.count("\n", 0, m.start()) + 1
            purpose = m.group(1)
            audited_spans.append((m.start(), m.end(), purpose))
            if reveal_sites is not None:
                reveal_sites.append((pretend_path, purpose))
            if (pretend_path, purpose) not in manifest:
                if "SF006" not in allows.get(lineno, set()):
                    findings.append(Finding(
                        pretend_path, lineno, "SF006",
                        f"reveal purpose '{purpose}' is not listed for this "
                        f"file in docs/SECRET_AUDIT.md"))
        for m in REVEAL_ANY_RE.finditer(text):
            if any(s <= m.start() < e for s, e, _ in audited_spans):
                continue
            tail = text[m.end():m.end() + 160]
            if REVEAL_DECL_RE.match(tail.strip()) or tail.lstrip().startswith(
                    "[[maybe_unused]]"):
                continue  # declaration, not a call
            if re.match(r"\s*(?:speed::)?(?:secret::)?Purpose::of\(", tail):
                continue  # literal purpose handled above (bad charset fails consteval)
            lineno = text.count("\n", 0, m.start()) + 1
            code_line, _ = strip_comments_and_strings(lines[lineno - 1])
            if m.group(1) not in code_line:
                continue  # the match sits in a comment
            if "SF006" not in allows.get(lineno, set()):
                findings.append(Finding(
                    pretend_path, lineno, "SF006",
                    f"{m.group(1)} without a literal Purpose::of(...) tag "
                    f"cannot be audited"))
    return findings


def load_manifest(path: Path) -> set[tuple[str, str]]:
    if not path.is_file():
        return set()
    entries = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        for m in MANIFEST_ROW_RE.finditer(line):
            entries.add((m.group(1), m.group(2)))
    return entries


def iter_sources(paths: list[str]) -> list[Path]:
    out: list[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_file():
            out.append(path)
        elif path.is_dir():
            out.extend(sorted(
                f for f in path.rglob("*")
                if f.suffix in SOURCE_SUFFIXES and f.is_file()))
        else:
            print(f"secretflow: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return out


def relpath(path: Path) -> str:
    try:
        return path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


def try_clang_engine() -> bool:
    try:
        import clang.cindex  # noqa: F401
        return True
    except Exception:
        return False


def run_check(paths: list[str], manifest_path: Path, engine: str) -> int:
    if engine == "clang" and not try_clang_engine():
        print("secretflow: --engine clang requested but libclang Python "
              "bindings are unavailable", file=sys.stderr)
        return 2
    if engine == "auto":
        engine = "clang" if try_clang_engine() else "regex"

    manifest = load_manifest(manifest_path)
    findings: list[Finding] = []
    reveal_sites: list[tuple[str, str]] = []
    scanned_src = False
    for f in iter_sources(paths):
        rel = relpath(f)
        scanned_src |= rel.startswith("src/")
        findings.extend(lint_file(rel, f.read_text(encoding="utf-8"),
                                  manifest, reveal_sites))

    # Stale manifest entries: only meaningful when the whole src/ tree (or at
    # least the manifest's files) was scanned.
    if scanned_src:
        scanned = {relpath(f) for f in iter_sources(paths)}
        live = set(reveal_sites)
        for entry in sorted(manifest):
            if entry[0] in scanned and entry not in live:
                findings.append(Finding(
                    entry[0], 1, "SF006",
                    f"stale docs/SECRET_AUDIT.md entry: no "
                    f"reveal_for/release_for with purpose '{entry[1]}'"))

    for f in findings:
        print(f.render())
    n = len(findings)
    print(f"secretflow ({engine} engine): {n} finding(s) in "
          f"{len(iter_sources(paths))} file(s)")
    return 1 if findings else 0


def run_fixtures(fixture_dir: str, manifest_path: Path) -> int:
    manifest = load_manifest(manifest_path)
    failures = 0
    files = iter_sources([fixture_dir])
    if not files:
        print(f"secretflow: no fixtures found in {fixture_dir}",
              file=sys.stderr)
        return 2
    for f in files:
        text = f.read_text(encoding="utf-8")
        lines = text.splitlines()
        m = LINT_AS_RE.search(lines[0]) if lines else None
        pretend = m.group(1) if m else relpath(f)
        expected = set()
        for idx, line in enumerate(lines, start=1):
            for em in EXPECT_RE.finditer(line):
                expected.add((idx, em.group(1)))
        actual = {(fi.line, fi.rule)
                  for fi in lint_file(pretend, text, manifest)}
        if actual == expected:
            print(f"PASS {f.name}: {len(expected)} expected finding(s)")
        else:
            failures += 1
            print(f"FAIL {f.name} (lint-as {pretend})")
            for line, rule in sorted(expected - actual):
                print(f"  missing expected {rule} at line {line}")
            for line, rule in sorted(actual - expected):
                print(f"  unexpected {rule} at line {line}")
    print(f"secretflow fixtures: {len(files) - failures}/{len(files)} passed")
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(prog="secretflow.py", description=__doc__)
    ap.add_argument("--check", action="store_true",
                    help="lint the given paths; exit 1 on findings")
    ap.add_argument("--fixtures", metavar="DIR",
                    help="run the fixture self-test against DIR")
    ap.add_argument("--engine", choices=["auto", "regex", "clang"],
                    default="regex",
                    help="analysis engine (default: regex; clang needs "
                         "libclang Python bindings)")
    ap.add_argument("--manifest", type=Path, default=DEFAULT_MANIFEST,
                    help="audit manifest (default: docs/SECRET_AUDIT.md)")
    ap.add_argument("paths", nargs="*", help="files or directories to lint")
    args = ap.parse_args()

    if args.fixtures:
        return run_fixtures(args.fixtures, args.manifest)
    if not args.paths:
        ap.error("no paths given (try: --check src/)")
    return run_check(args.paths, args.manifest, args.engine)


if __name__ == "__main__":
    sys.exit(main())
