#!/usr/bin/env python3
"""lockdiscipline: the SPEED lock-discipline linter.

Enforces the concurrency contract of src/common/annotated_lock.h and
docs/LOCK_ORDER.md at the places neither Clang Thread Safety Analysis nor
the run-time rank checker can reach (GCC builds, unexecuted paths, doc
drift):

  LD001  raw std lock/cv primitive (std::mutex, std::lock_guard, ...)
         outside src/common/annotated_lock.h — everything must go through
         the capability-annotated wrappers
  LD002  annotation discipline: a Mutex/SharedMutex member declared without
         an explicit LockRank, or a field documented as "guarded by" a lock
         without a GUARDED_BY() annotation
  LD003  rank order: the docs/LOCK_ORDER.md table and the LockRank enum out
         of sync, or a lexically nested acquisition whose rank does not
         strictly increase
  LD004  a lock held across a blocking transport/backend/enclave call
         (round_trip, send_frame/recv_frame, ecall, recover, sleep_for)

Suppression: `// lockdiscipline-allow: LDNNN <reason>` on the offending
line or the line above it. For LD004 the comment may also sit in the doc
block above the function, in which case it covers that whole function body
— blocking-under-lock exceptions are per-design-contract, not per-line
(each one must also be justified in docs/LOCK_ORDER.md's LD004 table).

Usage:
  tools/lint/lockdiscipline.py --check src/       # lint the tree, exit 1 on findings
  tools/lint/lockdiscipline.py --fixtures tools/lint/fixtures/lockdiscipline
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_LOCK_ORDER_DOC = REPO_ROOT / "docs" / "LOCK_ORDER.md"
DEFAULT_LOCK_HEADER = REPO_ROOT / "src" / "common" / "annotated_lock.h"

# The one file allowed to name the raw primitives (it wraps them).
WRAPPER_HEADER = "src/common/annotated_lock.h"

SOURCE_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}

ALLOW_RE = re.compile(r"//\s*lockdiscipline-allow:\s*(LD\d{3})")
EXPECT_RE = re.compile(r"//\s*EXPECT:\s*(LD\d{3})")
LINT_AS_RE = re.compile(r"//\s*lint-as:\s*(\S+)")

RAW_PRIMITIVE_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable|"
    r"condition_variable_any|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)

# `Mutex name{...};` / `SharedMutex name;` member/local declarations. The
# leading anchor rejects parameters (`foo(Mutex& m)`) and mentions in types.
MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:speed::)?(Mutex|SharedMutex)\s+(\w+)\s*(\{[^}]*\})?\s*;"
)

# Rank resolution for the nesting check: declaration with a literal rank.
DECL_RANK_RE = re.compile(
    r"\b(?:Mutex|SharedMutex)\s+(\w+)\s*\{\s*LockRank::(k\w+)"
)

# Guard acquisitions. The expression's trailing identifier names the mutex
# (`shard.mu`, `node->mu`, `mu_`). MutexLockAll is the sanctioned equal-rank
# multi-lock and is deliberately NOT matched here.
GUARD_RE = re.compile(
    r"\b(MutexLock|ReaderLock|WriterLock|ScopedLock)\s+\w+\s*[({]\s*([^);]*?)\s*[)}]"
)
TRAILING_IDENT_RE = re.compile(r"(\w+)\s*$")

# Blocking calls a held lock must not span (docs/LOCK_ORDER.md "Holding
# locks across blocking calls"). Member-call syntax only, so definitions
# (`Bytes round_trip(ByteView) override {`) don't fire.
BLOCKING_RE = re.compile(
    r"(?:->|\.)\s*(round_trip|link_round_trip|send_frame|recv_frame|ecall|"
    r"recover)\s*\(|std::this_thread::sleep_for"
)

GUARDED_PROSE_RE = re.compile(r"\bguard(?:s|ed)?\s+by\b", re.IGNORECASE)

ENUM_START_RE = re.compile(r"\benum\s+class\s+LockRank\b")
ENUM_ENTRY_RE = re.compile(r"^\s*(k\w+)\s*=\s*(\d+)\s*,")
DOC_ROW_RE = re.compile(r"^\|\s*(\d+)\s*\|\s*`(k\w+)`")


@dataclass
class Finding:
    path: str       # repo-relative (or lint-as) path
    line: int       # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclass
class ActiveGuard:
    name: str
    rank_name: str | None
    rank: int | None
    depth: int
    line: int


def strip_comments_and_strings(line: str, in_block: bool) -> tuple[str, bool]:
    """Return (code, still_in_block_comment) with comments and string/char
    literal contents blanked so rules don't fire on prose."""
    out = []
    i, n = 0, len(line)
    state = None  # None | '"' | "'"
    while i < n:
        if in_block:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block = False
            continue
        c = line[i]
        if state is None:
            if c == '/' and i + 1 < n and line[i + 1] == '/':
                break  # rest of line is a comment
            if c == '/' and i + 1 < n and line[i + 1] == '*':
                in_block = True
                i += 2
                continue
            if c in ('"', "'"):
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        else:
            if c == '\\':
                i += 2
                continue
            if c == state:
                state = None
                out.append(c)
            i += 1
    return "".join(out), in_block


def collect_allows(lines: list[str]) -> dict[int, set[str]]:
    """Map line number -> rules suppressed there (same line or line above)."""
    allows: dict[int, set[str]] = {}
    for idx, line in enumerate(lines, start=1):
        for m in ALLOW_RE.finditer(line):
            allows.setdefault(idx, set()).add(m.group(1))
            allows.setdefault(idx + 1, set()).add(m.group(1))
    return allows


def parse_enum_ranks(header_text: str) -> dict[str, int]:
    """LockRank enumerator -> numeric value, from annotated_lock.h."""
    ranks: dict[str, int] = {}
    in_enum = False
    for line in header_text.splitlines():
        if not in_enum:
            if ENUM_START_RE.search(line):
                in_enum = True
            continue
        if re.match(r"^\s*};", line):
            break
        m = ENUM_ENTRY_RE.match(line)
        if m:
            ranks[m.group(1)] = int(m.group(2))
    return ranks


def parse_doc_ranks(doc_text: str) -> dict[str, tuple[int, int]]:
    """Enumerator -> (rank, doc line) from the LOCK_ORDER.md table."""
    ranks: dict[str, tuple[int, int]] = {}
    for idx, line in enumerate(doc_text.splitlines(), start=1):
        m = DOC_ROW_RE.match(line)
        if m:
            ranks[m.group(2)] = (int(m.group(1)), idx)
    return ranks


def check_doc_sync(enum_ranks: dict[str, int],
                   doc_ranks: dict[str, tuple[int, int]],
                   doc_path: str, header_path: str) -> list[Finding]:
    """LD003: the doc table and the enum must agree exactly."""
    findings: list[Finding] = []
    for name, value in enum_ranks.items():
        if name not in doc_ranks:
            findings.append(Finding(
                doc_path, 1, "LD003",
                f"LockRank::{name} ({value}) missing from the rank table"))
        elif doc_ranks[name][0] != value:
            findings.append(Finding(
                doc_path, doc_ranks[name][1], "LD003",
                f"rank table says {name} = {doc_ranks[name][0]} but "
                f"{header_path} says {value}"))
    for name, (value, lineno) in doc_ranks.items():
        if name not in enum_ranks:
            findings.append(Finding(
                doc_path, lineno, "LD003",
                f"rank table lists {name} = {value} but the LockRank enum "
                f"has no such enumerator"))
    return findings


def file_rank_map(lines_code: list[str],
                  enum_ranks: dict[str, int]) -> dict[str, tuple[str, int]]:
    """Mutex variable name -> (rank enumerator, value) for this file.
    Names bound to more than one rank in the file are dropped (ambiguous:
    e.g. `mu` in two different structs) — soundness over coverage."""
    seen: dict[str, tuple[str, int]] = {}
    ambiguous: set[str] = set()
    for code in lines_code:
        for m in DECL_RANK_RE.finditer(code):
            name, rank_name = m.group(1), m.group(2)
            if rank_name not in enum_ranks:
                continue
            entry = (rank_name, enum_ranks[rank_name])
            if name in seen and seen[name] != entry:
                ambiguous.add(name)
            seen[name] = entry
    for name in ambiguous:
        seen.pop(name, None)
    return seen


def lint_file(pretend_path: str, text: str,
              enum_ranks: dict[str, int]) -> list[Finding]:
    """Run LD001/LD002 and the scope-tracking LD003/LD004 over one file."""
    findings: list[Finding] = []
    lines = text.splitlines()
    allows = collect_allows(lines)

    # Pre-strip every line once (block-comment state threads through).
    lines_code: list[str] = []
    in_block = False
    for raw in lines:
        code, in_block = strip_comments_and_strings(raw, in_block)
        lines_code.append(code)

    ranks = file_rank_map(lines_code, enum_ranks)

    def add(lineno: int, rule: str, message: str) -> None:
        if rule in allows.get(lineno, set()):
            return
        findings.append(Finding(pretend_path, lineno, rule, message))

    depth = 0
    active: list[ActiveGuard] = []
    # Function-scope LD004 allowance: armed by a doc-block allow comment,
    # live while the brace depth stays above where the comment appeared.
    ld004_armed = False
    ld004_base_depth = 0
    ld004_entered = False
    ld004_armed_line = 0

    for idx, (raw, code) in enumerate(zip(lines, lines_code), start=1):
        if "LD004" in {m.group(1) for m in ALLOW_RE.finditer(raw)}:
            ld004_armed = True
            ld004_base_depth = depth
            ld004_entered = False
            ld004_armed_line = idx

        stripped = code.strip()
        if stripped:
            # LD001: raw primitives outside the wrapper header.
            if pretend_path != WRAPPER_HEADER:
                m = RAW_PRIMITIVE_RE.search(code)
                if m:
                    add(idx, "LD001",
                        f"raw std::{m.group(1)} outside {WRAPPER_HEADER}; "
                        f"use the annotated wrappers (Mutex, MutexLock, "
                        f"CondVar, ...)")

            # LD002a: Mutex member without an explicit LockRank.
            dm = MUTEX_DECL_RE.match(code)
            if dm and pretend_path != WRAPPER_HEADER:
                init = dm.group(3) or ""
                if "LockRank::" not in init:
                    add(idx, "LD002",
                        f"{dm.group(1)} `{dm.group(2)}` declared without an "
                        f"explicit LockRank — every lock must place itself "
                        f"in docs/LOCK_ORDER.md's total order")

            # LD002b: prose "guarded by" without the GUARDED_BY annotation.
            if GUARDED_PROSE_RE.search(raw) and not dm \
                    and stripped.endswith(";") and "GUARDED_BY" not in code:
                add(idx, "LD002",
                    "field documented as guarded by a lock but missing the "
                    "GUARDED_BY() annotation")

        # Comment-only "guarded by" line: check the next declaration line.
        if not stripped and GUARDED_PROSE_RE.search(raw) and idx < len(lines):
            nxt_code = lines_code[idx]
            nxt = nxt_code.strip()
            if nxt.endswith(";") and "GUARDED_BY" not in nxt_code \
                    and not MUTEX_DECL_RE.match(nxt_code) \
                    and not RAW_PRIMITIVE_RE.search(nxt_code):
                add(idx + 1, "LD002",
                    "field documented as guarded by a lock but missing the "
                    "GUARDED_BY() annotation")

        # New guard acquisitions on this line (recorded at current depth;
        # braces on the same line are counted after, which matches the
        # `MutexLock lock(mu_);` statement form used throughout).
        for gm in GUARD_RE.finditer(code):
            expr = gm.group(2)
            tm = TRAILING_IDENT_RE.search(expr)
            name = tm.group(1) if tm else expr
            entry = ranks.get(name)
            guard = ActiveGuard(
                name=name,
                rank_name=entry[0] if entry else None,
                rank=entry[1] if entry else None,
                depth=depth,
                line=idx,
            )
            # LD003 (nesting): a new acquisition must out-rank every lock
            # already held in this lexical scope chain.
            if guard.rank is not None:
                for held in active:
                    if held.rank is not None and guard.rank <= held.rank:
                        add(idx, "LD003",
                            f"acquiring {guard.rank_name} ({guard.rank}) "
                            f"while {held.rank_name} ({held.rank}) is held "
                            f"(line {held.line}); acquisition order must "
                            f"strictly increase — see docs/LOCK_ORDER.md")
            active.append(guard)

        # LD004: blocking call while any guard is lexically active.
        bm = BLOCKING_RE.search(code)
        if bm and active:
            suppressed = ld004_armed and (
                ld004_entered or idx - ld004_armed_line <= 2)
            if not suppressed:
                what = bm.group(1) or "std::this_thread::sleep_for"
                held = ", ".join(g.name for g in active)
                add(idx, "LD004",
                    f"blocking call `{what}` while holding {held}; release "
                    f"the lock first or allowlist the contract "
                    f"(docs/LOCK_ORDER.md)")

        # Brace tracking closes scopes and retires their guards.
        for ch in code:
            if ch == '{':
                depth += 1
                if ld004_armed:
                    ld004_entered = True
            elif ch == '}':
                depth -= 1
                active = [g for g in active if g.depth <= depth]
                if ld004_armed and ld004_entered and \
                        depth <= ld004_base_depth:
                    ld004_armed = False

    return findings


def iter_sources(paths: list[str]) -> list[Path]:
    out: list[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_file():
            out.append(path)
        elif path.is_dir():
            out.extend(sorted(
                f for f in path.rglob("*")
                if f.suffix in SOURCE_SUFFIXES and f.is_file()))
        else:
            print(f"lockdiscipline: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return out


def relpath(path: Path) -> str:
    try:
        return path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


def load_enum_ranks(header: Path) -> dict[str, int]:
    if not header.is_file():
        print(f"lockdiscipline: missing {header}", file=sys.stderr)
        sys.exit(2)
    ranks = parse_enum_ranks(header.read_text(encoding="utf-8"))
    if not ranks:
        print(f"lockdiscipline: no LockRank enum found in {header}",
              file=sys.stderr)
        sys.exit(2)
    return ranks


def run_check(paths: list[str], doc: Path, header: Path) -> int:
    enum_ranks = load_enum_ranks(header)
    findings: list[Finding] = []

    if doc.is_file():
        findings.extend(check_doc_sync(
            enum_ranks, parse_doc_ranks(doc.read_text(encoding="utf-8")),
            relpath(doc), relpath(header)))
    else:
        findings.append(Finding(relpath(doc), 1, "LD003",
                                "docs/LOCK_ORDER.md is missing"))

    files = iter_sources(paths)
    for f in files:
        findings.extend(lint_file(relpath(f),
                                  f.read_text(encoding="utf-8"), enum_ranks))

    for f in findings:
        print(f.render())
    print(f"lockdiscipline: {len(findings)} finding(s) in "
          f"{len(files)} file(s)")
    return 1 if findings else 0


def run_fixtures(fixture_dir: str, header: Path) -> int:
    """Self-test: every fixture declares its expected findings inline with
    `// EXPECT: LDNNN`; got-vs-expected must match exactly per line."""
    enum_ranks = load_enum_ranks(header)
    failures = 0
    files = iter_sources([fixture_dir])
    if not files:
        print(f"lockdiscipline: no fixtures found in {fixture_dir}",
              file=sys.stderr)
        return 2
    for f in files:
        text = f.read_text(encoding="utf-8")
        lines = text.splitlines()
        m = LINT_AS_RE.search(lines[0]) if lines else None
        pretend = m.group(1) if m else relpath(f)
        expected = set()
        for idx, line in enumerate(lines, start=1):
            for em in EXPECT_RE.finditer(line):
                expected.add((idx, em.group(1)))
        got = {(fd.line, fd.rule)
               for fd in lint_file(pretend, text, enum_ranks)}
        if got != expected:
            failures += 1
            print(f"FIXTURE MISMATCH {relpath(f)}")
            for lineno, rule in sorted(expected - got):
                print(f"  missing: line {lineno} {rule}")
            for lineno, rule in sorted(got - expected):
                print(f"  spurious: line {lineno} {rule}")
    total = len(files)
    print(f"lockdiscipline fixtures: {total - failures}/{total} ok")
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--check", nargs="+", metavar="PATH",
                    help="lint these files/directories")
    ap.add_argument("--fixtures", metavar="DIR",
                    help="run the fixture self-test")
    ap.add_argument("--lock-order", default=str(DEFAULT_LOCK_ORDER_DOC),
                    help="path to docs/LOCK_ORDER.md")
    ap.add_argument("--lock-header", default=str(DEFAULT_LOCK_HEADER),
                    help="path to src/common/annotated_lock.h")
    args = ap.parse_args()

    header = Path(args.lock_header)
    if args.fixtures:
        return run_fixtures(args.fixtures, header)
    if args.check:
        return run_check(args.check, Path(args.lock_order), header)
    ap.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
