// lint-as: src/store/entry_check.cc
// Fixture: non-constant-time equality on authenticator bytes (SF002) and
// libc RNG (SF005), plus a deliberate suppression to pin the escape hatch.
#include <array>
#include <cstdlib>

namespace speed::store {

struct Entry {
  std::array<unsigned char, 32> mac;
  std::array<unsigned char, 16> session_key;
  int flags = 0;
};

bool same_entry(const Entry& a, const Entry& b) {
  if (a.mac == b.mac) return true;                  // EXPECT: SF002
  return a.session_key != b.session_key;            // EXPECT: SF002
}

int jitter() {
  std::srand(42);                                   // EXPECT: SF005
  return std::rand() % 7;                           // EXPECT: SF005
}

bool same_flags(const Entry& a, const Entry& b) {
  return a.flags == b.flags;  // plain int compare: no finding
}

bool suppressed(const Entry& a, const Entry& b) {
  // secretflow-allow: SF002 fixture proves suppressions work
  return a.mac == b.mac;
}

}  // namespace speed::store
