// lint-as: src/telemetry/exposition_extra.cc
// Fixture: telemetry/exposition code must never see secret types or revealed
// bytes (SF004) — the label whitelist keeps cardinality bounded, and this
// rule keeps key material out of the exporter entirely.
#include <sstream>

#include "common/secret.h"

namespace speed::telemetry {

class KeyDumper {
 public:
  explicit KeyDumper(secret::Buffer key) : key_(std::move(key)) {}  // EXPECT: SF004

  std::string dump() const {
    std::ostringstream os;
    os << "key=" << hexify(key_.reveal_for(  // EXPECT: SF004 // EXPECT: SF006
        secret::Purpose::of("metrics_debug")));  // EXPECT: SF004
    return os.str();
  }

 private:
  static std::string hexify(ByteView);
  secret::Buffer key_;  // EXPECT: SF004
};

// Plain counters are what telemetry is for: no finding.
inline long add(long a, long b) { return a + b; }

}  // namespace speed::telemetry
