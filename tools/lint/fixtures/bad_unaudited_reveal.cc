// lint-as: src/mle/rce_extra.cc
// Fixture: every reveal needs a literal Purpose::of tag whose (file, purpose)
// pair is listed in docs/SECRET_AUDIT.md (SF006).
#include "common/secret.h"

namespace speed::mle {

ByteView unaudited(const secret::Buffer& key) {
  return key.reveal_for(secret::Purpose::of("totally_unaudited"));  // EXPECT: SF006
}

ByteView non_literal(const secret::Buffer& key, secret::Purpose why) {
  return key.reveal_for(why);  // EXPECT: SF006
}

// An audited pair from the manifest (src/mle/rce.cc owns rce_key_wrap, not
// this file) is still a finding here: the manifest is per-file.
ByteView wrong_file(const secret::Buffer& key) {
  return key.reveal_for(secret::Purpose::of("rce_key_wrap"));  // EXPECT: SF006
}

}  // namespace speed::mle
