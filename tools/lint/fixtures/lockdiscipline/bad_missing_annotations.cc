// lint-as: src/fixture/bad_missing_annotations.cc
// LD002: a Mutex that never places itself in the global order, and a field
// whose comment admits it is guarded while the declaration stays bare.
#include "common/annotated_lock.h"

namespace speed {

class Unranked {
 public:
  void bump() {
    MutexLock lock(mu_);
    ++value_;
  }

 private:
  Mutex mu_;  // EXPECT: LD002
  mutable SharedMutex smu_;  // EXPECT: LD002
  std::uint64_t value_;  // guarded by mu_  // EXPECT: LD002
  std::uint64_t annotated_ GUARDED_BY(mu_) = 0;  // guarded by mu_, and says so
};

}  // namespace speed
