// lint-as: src/fixture/bad_raw_primitives.cc
// LD001: raw standard-library lock primitives bypass the capability
// annotations AND the rank checker; only annotated_lock.h may name them.
#include <condition_variable>
#include <mutex>

namespace speed {

class RawLocker {
 public:
  void bump() {
    std::lock_guard<std::mutex> lock(m_);  // EXPECT: LD001
    ++value_;
  }

  void wait_nonzero() {
    std::unique_lock<std::mutex> lock(m_);  // EXPECT: LD001
    cv_.wait(lock, [this] { return value_ != 0; });
  }

 private:
  std::mutex m_;               // EXPECT: LD001
  std::condition_variable cv_;  // EXPECT: LD001
  std::uint64_t value_ = 0;
};

}  // namespace speed
