// lint-as: src/fixture/bad_rank_inversion.cc
// LD003: lexically nested acquisition that does not strictly increase in
// rank — the shape the run-time checker aborts on, caught without running.
#include "common/annotated_lock.h"

namespace speed {

class Inverted {
 public:
  void descend() {
    MutexLock outer(store_mu_);
    MutexLock inner(channel_mu_);  // EXPECT: LD003
  }

  void same_rank_twice() {
    MutexLock first(store_mu_);
    MutexLock second(peer_mu_);  // EXPECT: LD003
  }

  void fine() {
    MutexLock outer(channel_mu_);
    MutexLock inner(store_mu_);
  }

 private:
  Mutex channel_mu_{LockRank::kRuntimeChannel};
  Mutex store_mu_{LockRank::kStoreShard};
  Mutex peer_mu_{LockRank::kStoreShard};
};

}  // namespace speed
