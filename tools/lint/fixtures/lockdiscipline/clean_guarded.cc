// lint-as: src/fixture/clean_guarded.cc
// Clean control: the sanctioned patterns must produce zero findings, proving
// the harness is not vacuously flagging every lock in sight.
#include "common/annotated_lock.h"

namespace speed {

class CleanCounter {
 public:
  void bump() {
    MutexLock lock(mu_);
    ++value_;
  }

  std::uint64_t read() const {
    MutexLock lock(mu_);
    return value_;
  }

  // Correct nesting: 200 is held, then 500 is acquired — strictly ascending.
  void ascend() {
    MutexLock outer(low_mu_);
    MutexLock inner(mu_);
    ++value_;
  }

  // The wait releases the lock, so a CV wait under a guard is not LD004.
  void wait_ready() {
    MutexLock lock(mu_);
    while (value_ == 0) cv_.wait(mu_);
  }

 private:
  Mutex low_mu_{LockRank::kRuntimeChannel};
  mutable Mutex mu_{LockRank::kTransport};
  CondVar cv_;
  std::uint64_t value_ GUARDED_BY(mu_) = 0;
};

}  // namespace speed
