// lint-as: src/fixture/bad_blocking_under_lock.cc
// LD004: a lock held across a blocking transport call stalls every other
// thread that wants the lock for as long as the wire takes — unless the
// serialization is the documented contract (allow comment + LOCK_ORDER.md).
#include "common/annotated_lock.h"

namespace speed {

class Transportish {
 public:
  virtual ~Transportish() = default;
  virtual int round_trip(int request) = 0;
};

class Caller {
 public:
  int bad(int request) {
    MutexLock lock(mu_);
    last_ = inner_->round_trip(request);  // EXPECT: LD004
    return last_;
  }

  void bad_sleep() {
    MutexLock lock(mu_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // EXPECT: LD004
  }

  // The strand contract: one in-flight exchange per connection, serialized
  // by this very lock (mirrors TcpTransport / StoreSession).
  // lockdiscipline-allow: LD004 the lock is the per-connection strand
  int sanctioned(int request) {
    MutexLock lock(mu_);
    last_ = inner_->round_trip(request);
    return last_;
  }

  int unlocked(int request) { return inner_->round_trip(request); }

 private:
  Mutex mu_{LockRank::kTransport};
  Transportish* inner_ = nullptr;
  int last_ GUARDED_BY(mu_) = 0;
};

}  // namespace speed
