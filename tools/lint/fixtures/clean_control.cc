// lint-as: src/mle/rce.cc
// Fixture: the clean control. Audited reveals, ct_equal comparisons, and
// Drbg randomness produce zero findings; if this file starts failing, the
// rules regressed, not the code under test.
#include "common/secret.h"
#include "crypto/drbg.h"

namespace speed::mle {

ByteView audited(const secret::Buffer& key) {
  return key.reveal_for(secret::Purpose::of("rce_key_wrap"));
}

bool compare(const secret::Buffer& a, const secret::Buffer& b) {
  return ct_equal(a, b);
}

secret::Buffer fresh_key(crypto::Drbg& drbg) {
  return drbg.secret_bytes(16);
}

}  // namespace speed::mle
