// lint-as: src/sgx/enclave_verify.cc
// Fixture: verifying a report MAC with memcmp is a timing oracle (SF001).
#include <cstring>

namespace speed::sgx {

struct Report {
  unsigned char mac[32];
};

bool verify_bad(const Report& report, const Report& expected) {
  return std::memcmp(report.mac, expected.mac, 32) == 0;  // EXPECT: SF001
}

bool verify_ok(const unsigned char* a, const unsigned char* b);
bool verify_good(const Report& report, const Report& expected) {
  return verify_ok(report.mac, expected.mac);  // ct_equal wrapper: no finding
}

}  // namespace speed::sgx
