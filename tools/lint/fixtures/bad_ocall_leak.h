// lint-as: src/capi/speed_debug.h
// Fixture: secret types must never appear on the C API / OCALL surface
// (SF003). The boundary traffics in plain bytes that were deliberately
// released, never in live secret handles.
#pragma once

#include "common/secret.h"

extern "C" {

// A debugging hook that hands the session key to untrusted host code.
void speed_debug_session_key(speed::secret::Buffer* out);  // EXPECT: SF003

// Returning revealed bytes through the boundary is just as bad.
const unsigned char* speed_debug_key_bytes(const speed::secret::Buffer& key) {  // EXPECT: SF003
  return key.reveal_for(speed::secret::Purpose::of("host_debug")).data();  // EXPECT: SF003 // EXPECT: SF006
}

// Plain, already-released bytes are fine: no finding.
void speed_result_copy(const unsigned char* data, unsigned long len);

}  // extern "C"
