// lint-as: src/telemetry/stream_exporter.cc
// Fixture: chunk/stream tags are content hashes of client plaintext and the
// manifest plaintext lists them — either one on a telemetry surface or a log
// line fingerprints user data (SF004). Derived scalars must be copied to a
// neutral local before they touch a sink.
#include <cstdio>
#include <string>

namespace speed::telemetry {

struct StreamExporter {
  std::string chunk_tag;  // EXPECT: SF004

  void dump(const std::string& stream_tag,  // EXPECT: SF004
            const std::string& manifest_plain) {  // EXPECT: SF004
    std::printf("tag=%s\n", stream_tag.c_str());  // EXPECT: SF004
    std::printf("bytes=%zu\n", manifest_plain.size());  // EXPECT: SF004
  }
};

// Neutral scalars are what telemetry is for: no finding.
inline void record(std::size_t manifest_bytes, std::size_t chunk_count) {
  std::printf("manifest_bytes=%zu chunks=%zu\n", manifest_bytes, chunk_count);
}

}  // namespace speed::telemetry
