// Batched wire protocol + switchless transition amortization benchmark
// (docs/PROTOCOL.md §9).
//
// Measures GET throughput against a live StoreTcpServer (epoll event loop,
// 8 shards) as two protocol knobs sweep:
//
//   * client micro-batch size (RuntimeConfig::Batching::max_ops): how many
//     concurrent GETs share one secure frame, one socket round trip, and —
//     server-side — one enclave crossing;
//   * server switchless mode: trusted work per frame routed through the
//     shared SwitchlessRing (one ECALL per drain) vs a private ECALL per
//     frame.
//
// batch=1 with switchless off is the exact v1 wire protocol: one message
// per frame, one crossing per message — the baseline every other point is
// compared against. The store-enclave crossing count is read before/after
// each run, so `store_ecalls_per_op` reports the measured per-op transition
// cost, not a model-derived estimate.
//
// Usage: bench_batch RESULTS.json [--smoke]
//   --smoke (or SPEED_BENCH_SMOKE=1) runs a two-point, ~2 s variant for CI.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "store/tcp_server.h"

namespace {

using namespace speed;

// Store-side emulation: full transition costs, parked waits (so client
// threads overlap where locks allow), and a small in-enclave service time —
// the small-op regime where the transition tax dominates and batching is
// supposed to pay.
sgx::CostModel store_model() {
  sgx::CostModel m;
  m.wait = sgx::CostModel::Wait::kSleep;
  m.ecall_ns = 4000;
  m.ocall_ns = 4000;
  m.epc_page_swap_ns = 0;
  m.store_service_ns = 0;
  return m;
}

struct RunPoint {
  std::size_t threads = 0;
  std::size_t batch = 0;  ///< 0 = batching disabled (v1 per-op protocol)
  bool switchless = false;
  std::uint64_t ops = 0;
  double seconds = 0;
  double ops_per_sec = 0;
  bench::LatencySummary latency;
  double store_ecalls_per_op = 0;
  sgx::SwitchlessRing::Stats ring;

  std::string json() const {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"threads\": %zu, \"batch\": %zu, \"switchless\": %s, "
        "\"ops\": %llu, \"seconds\": %.3f, \"ops_per_sec\": %.0f, "
        "\"store_ecalls_per_op\": %.4f, "
        "\"ring\": {\"calls\": %llu, \"drains\": %llu, "
        "\"transitions_saved\": %llu}, \"latency\": ",
        threads, batch, switchless ? "true" : "false",
        static_cast<unsigned long long>(ops), seconds, ops_per_sec,
        store_ecalls_per_op, static_cast<unsigned long long>(ring.calls),
        static_cast<unsigned long long>(ring.drains),
        static_cast<unsigned long long>(ring.transitions_saved));
    return std::string(buf) + latency.json() + "}";
  }
};

/// One configuration: fresh platform/store/server, `kTags` entries seeded
/// through a setup runtime, then `threads` client threads re-executing the
/// same inputs (local cache off) so every call is a store GET hit.
RunPoint run_point(std::size_t threads, std::size_t batch, bool switchless,
                   std::size_t ops_per_thread) {
  sgx::Platform platform(store_model());
  store::StoreConfig store_config;
  store_config.shards = 8;
  store::ResultStore result_store(platform, store_config);
  store::StoreServerConfig server_config;
  server_config.switchless = switchless;
  store::StoreTcpServer server(result_store, 0, std::nullopt, server_config);

  constexpr std::size_t kTags = 64;
  const auto connect = [&](sgx::Enclave& app) {
    return store::connect_tcp_app(app,
                                  result_store.enclave().measurement(),
                                  "127.0.0.1", server.port());
  };
  const auto make_runtime = [&](sgx::Enclave& app, bool batching) {
    auto conn = connect(app);
    runtime::RuntimeConfig config;
    config.local_cache = false;  // every call must reach the store
    config.tracing = false;
    if (batching) {
      config.batching.enabled = true;
      config.batching.max_ops = batch;
      // The leader's quiesce grace is flush_delay/4; 400us keeps the cap
      // tight while the grace (100us) still spans the arrival jitter of
      // threads woken by the previous frame's replies. Overridable for
      // tuning sweeps.
      config.batching.flush_delay_us = 400;
      if (const char* env = std::getenv("SPEED_BENCH_FLUSH_US")) {
        config.batching.flush_delay_us =
            static_cast<std::uint64_t>(std::atoll(env));
      }
    }
    auto rt = std::make_unique<runtime::DedupRuntime>(
        app, std::move(conn.session_key), std::move(conn.transport), config);
    rt->libraries().register_library("lib", "1", as_bytes("code"));
    return rt;
  };
  const auto input_for = [](std::size_t i) {
    Bytes in(32, 0);
    in[0] = static_cast<std::uint8_t>(i);
    in[1] = static_cast<std::uint8_t>(i >> 8);
    return in;
  };
  const auto compute = [](const Bytes& in) { return concat(in, in); };

  // Seed the store: one miss per tag through a plain setup connection.
  {
    auto app = platform.create_enclave("bench-batch-seeder");
    auto rt = make_runtime(*app, /*batching=*/false);
    runtime::Deduplicable<Bytes(const Bytes&)> f(*rt, {"lib", "1", "f"},
                                                 compute);
    for (std::size_t i = 0; i < kTags; ++i) (void)f(input_for(i));
    rt->flush();
  }

  // Measurement: `threads` application threads share ONE runtime (and so
  // one connection/secure channel) — the micro-batcher's coalescing unit.
  auto app = platform.create_enclave("bench-batch-app");
  auto rt = make_runtime(*app, /*batching=*/batch > 1);
  runtime::Deduplicable<Bytes(const Bytes&)> f(*rt, {"lib", "1", "f"},
                                               compute);

  const std::uint64_t ecalls_before = result_store.enclave().ecall_count();
  const sgx::SwitchlessRing::Stats ring_before =
      switchless ? server.switchless_ring()->stats()
                 : sgx::SwitchlessRing::Stats{};

  std::vector<bench::LatencyRecorder> recorders(threads);
  std::vector<std::thread> workers;
  Stopwatch wall;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(0xBA7C4000ull + t);
      for (std::size_t i = 0; i < ops_per_thread; ++i) {
        const Bytes in = input_for(rng() % kTags);
        recorders[t].time([&] { (void)f(in); });
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed_ms = wall.elapsed_ms();

  RunPoint point;
  point.threads = threads;
  point.batch = batch;
  point.switchless = switchless;
  point.ops = threads * ops_per_thread;
  point.seconds = elapsed_ms / 1e3;
  point.ops_per_sec = point.ops / (elapsed_ms / 1e3);
  point.latency = bench::summarize(recorders);
  point.store_ecalls_per_op =
      static_cast<double>(result_store.enclave().ecall_count() -
                          ecalls_before) /
      static_cast<double>(point.ops);
  if (switchless) {
    const auto after = server.switchless_ring()->stats();
    point.ring.calls = after.calls - ring_before.calls;
    point.ring.drains = after.drains - ring_before.drains;
    point.ring.transitions_saved =
        after.transitions_saved - ring_before.transitions_saved;
  }
  const std::uint64_t hits = rt->stats().hits;
  if (hits != point.ops) {
    std::fprintf(stderr,
                 "bench_batch: WARNING %llu/%llu calls were store hits "
                 "(degraded or missed)\n",
                 static_cast<unsigned long long>(hits),
                 static_cast<unsigned long long>(point.ops));
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bench_batch RESULTS.json [--smoke]\n");
    return 1;
  }
  const bool smoke =
      (argc > 2 && std::strcmp(argv[2], "--smoke") == 0) ||
      std::getenv("SPEED_BENCH_SMOKE") != nullptr;

  const std::size_t ops_per_thread = smoke ? 200 : 4000;
  const std::vector<std::size_t> batches =
      smoke ? std::vector<std::size_t>{1, 16}
            : std::vector<std::size_t>{1, 2, 4, 8, 16, 32};
  const std::vector<std::size_t> thread_counts =
      smoke ? std::vector<std::size_t>{8} : std::vector<std::size_t>{1, 8};

  std::vector<RunPoint> points;
  for (const std::size_t threads : thread_counts) {
    for (const std::size_t batch : batches) {
      // batch=1 runs the v1 protocol (no batch frames); measure it against
      // both server modes so the switchless win is visible in isolation.
      const bool also_plain = batch == 1;
      if (also_plain) {
        points.push_back(
            run_point(threads, batch, /*switchless=*/false, ops_per_thread));
        std::printf("threads=%zu batch=%zu plain      %9.0f ops/s  "
                    "%.3f ecalls/op\n",
                    threads, batch, points.back().ops_per_sec,
                    points.back().store_ecalls_per_op);
      }
      points.push_back(
          run_point(threads, batch, /*switchless=*/true, ops_per_thread));
      std::printf("threads=%zu batch=%zu switchless %9.0f ops/s  "
                  "%.3f ecalls/op\n",
                  threads, batch, points.back().ops_per_sec,
                  points.back().store_ecalls_per_op);
    }
  }

  // Headline ratio: batched GET throughput vs the v1 per-op protocol at the
  // highest thread count (the acceptance gate is >= 2x at batch >= 16).
  double baseline = 0, best_batched = 0;
  const std::size_t top_threads = thread_counts.back();
  for (const RunPoint& p : points) {
    if (p.threads != top_threads) continue;
    if (p.batch == 1 && !p.switchless) baseline = p.ops_per_sec;
    if (p.batch >= 16) best_batched = std::max(best_batched, p.ops_per_sec);
  }
  const double speedup = baseline > 0 ? best_batched / baseline : 0;
  std::printf("batch>=16 vs v1 per-op @ %zu threads: %.2fx\n", top_threads,
              speedup);

  std::string json = "{\n  \"bench\": \"batch\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"model\": {\"ecall_ns\": 4000, \"ocall_ns\": 4000, "
          "\"store_service_ns\": 0, \"wait\": \"sleep\"},\n";
  json += "  \"store_shards\": 8,\n";
  json += "  \"speedup_batch16_vs_v1\": " + std::to_string(speedup) + ",\n";
  json += "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    json += "    " + points[i].json();
    json += (i + 1 < points.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::FILE* out = std::fopen(argv[1], "w");
  if (out == nullptr) {
    std::perror("bench_batch: fopen");
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  bench::write_telemetry_snapshot(argv[1]);
  std::printf("wrote %s\n", argv[1]);
  return speedup >= 2.0 || smoke ? 0 : 2;
}
