// Fig. 5(a) regeneration: SIFT feature extraction under SPEED.
//
// For each image size we report the baseline in-enclave running time, the
// initial computation through SPEED (miss + secure store), and the
// subsequent computation (hit), as percentages of the baseline — the three
// bars of the paper's figure. Expected shape: Init.Comp. within a few
// percent of baseline (SIFT dwarfs the crypto), Subsq.Comp. a huge win —
// the paper reports 76-94x speedups.
#include <cstdio>

#include "apps/sift/sift.h"
#include "bench_common.h"
#include "workload/synthetic.h"

namespace {

using namespace speed;

struct SizeCase {
  int width, height;
};
constexpr SizeCase kSizes[] = {{256, 256}, {512, 512}, {768, 768}, {1024, 1024}};
constexpr int kTrials = 3;

}  // namespace

int main() {
  std::puts("=== Fig. 5(a): image feature extraction via SIFT ===");
  std::puts("(relative running time; baseline = ported SIFT without SPEED)\n");

  bench::Testbed bed("sift-bench-app");
  bed.rt.libraries().register_library(sift::kLibraryFamily,
                                      sift::kLibraryVersion,
                                      as_bytes("sift-code-v1"));
  // The ported function allocates its pyramid on the enclave heap, so it
  // charges the EPC: big images overflow the usable EPC and pay paging,
  // exactly like the paper's in-enclave libsiftpp baseline.
  sgx::Enclave* enclave = bed.enclave.get();
  const auto enclave_sift = [enclave](const sift::Image& img) {
    sgx::TrustedCharge pyramid(
        *enclave, sift::working_set_bytes(img.width(), img.height()));
    return sift::extract_sift(img);
  };
  runtime::Deduplicable<std::vector<sift::Keypoint>(const sift::Image&)>
      dedup_sift(bed.rt,
                 {sift::kLibraryFamily, sift::kLibraryVersion,
                  "vector<Keypoint> sift(Image)"},
                 enclave_sift);

  TablePrinter table({"Image", "Baseline (ms)", "Init.Comp. (ms)", "Init. %",
                      "Subsq.Comp. (ms)", "Subsq. %", "Speedup"});

  std::uint64_t seed = 100;
  for (const auto& size : kSizes) {
    // Baseline: run the ported function inside the enclave, no dedup.
    const sift::Image baseline_img =
        workload::synth_image(size.width, size.height, seed++);
    const double baseline_ms = bench::time_ms(kTrials, [&] {
      bed.enclave->ecall([&] {
        const auto k = enclave_sift(baseline_img);
        __asm__ volatile("" : : "m"(k) : "memory");
      });
    });

    // Init.Comp.: fresh images so every call misses; includes secure store.
    double init_total = 0;
    for (int t = 0; t < kTrials; ++t) {
      const sift::Image img =
          workload::synth_image(size.width, size.height, seed++);
      Stopwatch sw;
      dedup_sift(img);
      bed.rt.flush();
      init_total += sw.elapsed_ms();
    }
    const double init_ms = init_total / kTrials;

    // Subsq.Comp.: repeat one already-stored image.
    const sift::Image hot = workload::synth_image(size.width, size.height, seed++);
    dedup_sift(hot);
    bed.rt.flush();
    const double subsq_ms =
        bench::time_ms(kTrials * 3, [&] { dedup_sift(hot); });

    table.add_row({std::to_string(size.width) + "x" + std::to_string(size.height),
                   TablePrinter::fmt(baseline_ms, 2),
                   TablePrinter::fmt(init_ms, 2),
                   bench::pct(init_ms, baseline_ms),
                   TablePrinter::fmt(subsq_ms, 3),
                   bench::pct(subsq_ms, baseline_ms),
                   TablePrinter::fmt(baseline_ms / subsq_ms, 1) + "x"});
  }
  table.print();
  std::puts("\nShape check vs paper Fig. 5(a): Init.Comp. within a few % of");
  std::puts("baseline; Subsq.Comp. speedup in the tens-to-hundreds range");
  std::puts("(paper: 76-94x on their image set).");
  return 0;
}
