// Metadata-footprint benchmark for the two-tier dictionary (PROTOCOL.md §11).
//
// Phase 1 (footprint): insert N distinct entries into a store configured with
// resident_meta_bytes = 0 — every entry's full record spills to the sealed
// tier, only the 32-byte index slot stays in EPC — and measure the EPC charge
// delta per entry. Baseline: the pre-paging store's own accounting formula
// (challenge + wrapped_key + digest + 96B bookkeeping = 176B for this
// workload shape, itself an *under*-count of the real unordered_map node +
// LRU list node cost it approximated). Gate: the measured ratio must be
// >= kMinRatio (exit 2 otherwise — CI runs `--smoke` with this gate).
//
// Phase 2 (fault-in): GET a random sample of the cold entries and report the
// client-observed latency of the fault-in path (unseal + decode per miss of
// the decoded-record cache) plus the spill/fault-in counters.
//
// Phase 3 (fig6 parity, skipped in --smoke): re-run Fig. 6's 8-thread /
// 8-shard emulated-service GET cell against a store with the default cache
// budget. The hot working set (1024 tags) fits the cache, so the number must
// land within noise of BENCH_fig6.json's matching point — the paging tier
// may not tax the hot path.
//
// Output: tables on stdout, JSON to argv path (default BENCH_metadata.json).
// `--smoke` anywhere in argv shrinks N and skips phase 3.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "crypto/drbg.h"
#include "workload/synthetic.h"

namespace {

using namespace speed;

constexpr std::size_t kChallengeBytes = 32;
constexpr std::size_t kWrappedBytes = 16;
constexpr std::size_t kPayloadBytes = 48;
constexpr std::size_t kShards = 8;
constexpr double kMinRatio = 4.0;  ///< exit-2 gate vs the legacy layout

/// The retired map-of-nodes store's own per-entry accounting (see the PR 10
/// history of result_store.cc): challenge + wrapped key + digest(32) +
/// tag-key-and-bookkeeping(96).
constexpr std::uint64_t kLegacyBytesPerEntry =
    kChallengeBytes + kWrappedBytes + 32 + 96;

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Distinct tags with uniform fingerprint ([0,8)) and shard ([8,16)) bytes —
/// sequential values there would pile every entry onto one index chain.
serialize::Tag nth_tag(std::uint64_t n) {
  serialize::Tag t{};
  const std::uint64_t a = mix64(n + 1);
  const std::uint64_t b = mix64(n ^ 0x9e3779b97f4a7c15ULL);
  for (int i = 0; i < 8; ++i) {
    t[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(a >> (8 * i));
    t[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(b >> (8 * i));
    t[16 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(n >> (8 * i));
  }
  return t;
}

serialize::PutRequest nth_put(crypto::Drbg& drbg, std::uint64_t n) {
  serialize::PutRequest put;
  put.tag = nth_tag(n);
  put.requester.fill(0x01);
  put.entry.challenge = drbg.bytes(kChallengeBytes);
  put.entry.wrapped_key = drbg.bytes(kWrappedBytes);
  put.entry.result_ct = drbg.bytes(kPayloadBytes);
  return put;
}

// Fig. 6 parity cell parameters — keep identical to bench_fig6_store.cc.
constexpr std::size_t kUniverse = 1024;
constexpr double kZipfSkew = 0.99;
constexpr std::size_t kOpsPerThread = 2000;
constexpr std::uint64_t kServiceNs = 20'000;

sgx::CostModel emulated_store_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  m.epc_page_swap_ns = 0;
  m.store_service_ns = kServiceNs;
  m.wait = sgx::CostModel::Wait::kSleep;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_metadata.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  // Slot tables hold power-of-two capacities at a 7/8 max load, so measured
  // density depends on where per-shard occupancy lands inside its capacity
  // band (reported bytes/entry is the honest total either way). Both point
  // sizes below sit mid-band with >5 sigma of binomial shard-imbalance
  // margin to the next doubling (per-shard 3300/4096 and 27500/32768).
  const std::size_t entries = smoke ? 26'400 : 220'000;

  // -------------------------------------------------- Phase 1: footprint
  std::printf("=== Metadata footprint: %zu entries, %zu shards, cold tier "
              "(resident_meta_bytes = 0) ===\n\n",
              entries, kShards);

  sgx::Platform platform(sgx::CostModel::disabled());
  store::StoreConfig cfg;
  cfg.shards = kShards;
  cfg.resident_meta_bytes = 0;  // footprint floor: index slots only
  store::ResultStore store(platform, cfg);
  crypto::Drbg drbg(to_bytes("bench-metadata"));

  const std::uint64_t epc_before = platform.epc().used_bytes();
  Stopwatch insert_sw;
  for (std::uint64_t n = 0; n < entries; ++n) {
    store.put(nth_put(drbg, n));
  }
  const double insert_ms = insert_sw.elapsed_ms();
  const std::uint64_t epc_after = platform.epc().used_bytes();
  const auto stats = store.stats();

  const std::uint64_t delta = epc_after - epc_before;
  const double bytes_per_entry =
      static_cast<double>(delta) / static_cast<double>(entries);
  const double entries_per_mb =
      static_cast<double>(entries) / (static_cast<double>(delta) / (1 << 20));
  const double legacy_entries_per_mb =
      static_cast<double>(1 << 20) / static_cast<double>(kLegacyBytesPerEntry);
  const double ratio =
      static_cast<double>(kLegacyBytesPerEntry) / bytes_per_entry;

  TablePrinter t1({"Layout", "Bytes/entry", "Entries/MB EPC"});
  t1.add_row({"legacy map-of-nodes (its own accounting)",
              std::to_string(kLegacyBytesPerEntry),
              TablePrinter::fmt(legacy_entries_per_mb, 0)});
  t1.add_row({"two-tier (32B slot + sealed spill)",
              TablePrinter::fmt(bytes_per_entry, 1),
              TablePrinter::fmt(entries_per_mb, 0)});
  t1.print();
  std::printf("\nEPC charge: %llu -> %llu bytes (delta %llu, peak %llu); "
              "index %llu, resident %llu, pinned %llu records\n",
              static_cast<unsigned long long>(epc_before),
              static_cast<unsigned long long>(epc_after),
              static_cast<unsigned long long>(delta),
              static_cast<unsigned long long>(platform.epc().peak_bytes()),
              static_cast<unsigned long long>(stats.meta_index_bytes),
              static_cast<unsigned long long>(stats.meta_resident_bytes),
              static_cast<unsigned long long>(stats.meta_pinned_records));
  std::printf("Density vs legacy: %.2fx (gate: >= %.1fx); %zu PUTs in %.0f ms "
              "(%llu spills)\n",
              ratio, kMinRatio, entries, insert_ms,
              static_cast<unsigned long long>(stats.meta_spills));

  // --------------------------------------------------- Phase 2: fault-in
  const std::size_t sample = smoke ? 5'000 : 20'000;
  std::vector<bench::LatencyRecorder> cold_recs(1);
  Xoshiro256 rng(0xFA17B1);
  std::size_t misses = 0;
  for (std::size_t i = 0; i < sample; ++i) {
    serialize::GetRequest get;
    get.tag = nth_tag(rng.below(entries));
    get.requester.fill(0x01);
    bool found = false;
    cold_recs[0].time([&] { found = store.get(get).found; });
    if (!found) ++misses;
  }
  const auto cold = bench::summarize(cold_recs);
  const auto stats2 = store.stats();
  std::printf("\nCold GET (fault-in) over %zu sampled tags: p50 %.1f us, "
              "p99 %.1f us, %llu fault-ins, %zu misses (expect 0)\n",
              sample, cold.p50_us, cold.p99_us,
              static_cast<unsigned long long>(stats2.meta_fault_ins), misses);

  // ------------------------------------------------ Phase 3: fig6 parity
  double parity_ops_per_sec = 0.0;
  if (!smoke) {
    sgx::Platform hot_platform(emulated_store_model());
    store::StoreConfig hot_cfg;
    hot_cfg.shards = kShards;  // default resident_meta_bytes: hot set cached
    store::ResultStore hot(hot_platform, hot_cfg);
    crypto::Drbg hot_drbg(to_bytes("bench-metadata-hot"));
    for (std::uint64_t n = 0; n < kUniverse; ++n) {
      hot.put(nth_put(hot_drbg, n));
    }
    constexpr int kThreads = 8;
    std::vector<std::vector<std::size_t>> streams;
    for (int t = 0; t < kThreads; ++t) {
      streams.push_back(workload::zipf_request_stream(
          kUniverse, kOpsPerThread, kZipfSkew,
          /*seed=*/42 + static_cast<std::uint64_t>(t)));
    }
    std::vector<std::thread> workers;
    Stopwatch sw;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&hot, &streams, t] {
        for (const std::size_t idx : streams[static_cast<std::size_t>(t)]) {
          serialize::GetRequest get;
          get.tag = nth_tag(idx);
          get.requester.fill(0x01);
          hot.get(get);
        }
      });
    }
    for (auto& w : workers) w.join();
    const double wall_ms = sw.elapsed_ms();
    parity_ops_per_sec =
        1000.0 * static_cast<double>(kThreads * kOpsPerThread) / wall_ms;
    std::printf("\nFig. 6 parity (8 threads / 8 shards, emulated %llu us "
                "service, default cache): %.0f op/s — compare to the "
                "matching throughput point in BENCH_fig6.json\n",
                static_cast<unsigned long long>(kServiceNs / 1000),
                parity_ops_per_sec);
  }

  // ------------------------------------------------------- JSON emission
  char buf[512];
  std::string json = "{\n  \"bench\": \"metadata\",\n";
  json += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  json += "  \"entries\": " + std::to_string(entries) + ",\n";
  json += "  \"shards\": " + std::to_string(kShards) + ",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"epc\": {\"before\": %llu, \"after\": %llu, "
                "\"delta\": %llu, \"peak\": %llu},\n",
                static_cast<unsigned long long>(epc_before),
                static_cast<unsigned long long>(epc_after),
                static_cast<unsigned long long>(delta),
                static_cast<unsigned long long>(platform.epc().peak_bytes()));
  json += buf;
  std::snprintf(
      buf, sizeof(buf),
      "  \"bytes_per_entry\": %.2f,\n  \"legacy_bytes_per_entry\": %llu,\n"
      "  \"entries_per_mb\": %.1f,\n  \"legacy_entries_per_mb\": %.1f,\n"
      "  \"ratio_vs_legacy\": %.3f,\n  \"gate_min_ratio\": %.1f,\n",
      bytes_per_entry, static_cast<unsigned long long>(kLegacyBytesPerEntry),
      entries_per_mb, legacy_entries_per_mb, ratio, kMinRatio);
  json += buf;
  std::snprintf(
      buf, sizeof(buf),
      "  \"meta\": {\"index_bytes\": %llu, \"resident_bytes\": %llu, "
      "\"spills\": %llu, \"fault_ins\": %llu, \"pinned_records\": %llu},\n",
      static_cast<unsigned long long>(stats2.meta_index_bytes),
      static_cast<unsigned long long>(stats2.meta_resident_bytes),
      static_cast<unsigned long long>(stats2.meta_spills),
      static_cast<unsigned long long>(stats2.meta_fault_ins),
      static_cast<unsigned long long>(stats2.meta_pinned_records));
  json += buf;
  std::snprintf(buf, sizeof(buf), "  \"insert_wall_ms\": %.1f,\n", insert_ms);
  json += buf;
  json += "  \"cold_get_latency\": " + cold.json();
  if (!smoke) {
    std::snprintf(buf, sizeof(buf),
                  ",\n  \"fig6_parity\": {\"threads\": 8, \"shards\": %zu, "
                  "\"store_service_ns\": %llu, \"ops_per_sec\": %.1f}",
                  kShards, static_cast<unsigned long long>(kServiceNs),
                  parity_ops_per_sec);
    json += buf;
  }
  json += "\n}\n";

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("\nWrote %s\n", json_path.c_str());

  if (ratio < kMinRatio) {
    std::fprintf(stderr,
                 "FAIL: metadata density %.2fx vs legacy is below the %.1fx "
                 "gate\n",
                 ratio, kMinRatio);
    return 2;
  }
  return 0;
}
