// Streaming chunked dedup vs whole-call dedup (docs/PROTOCOL.md §10).
//
// Replays a version chain — one base blob plus edited successors and
// byte-shifted copies, the classic backup/sync workload — through both data
// paths and compares what each actually uploads:
//
//   whole-call — DedupRuntime::execute with one tag over the full blob.
//                Any edit or shift changes the tag, so only bit-identical
//                re-puts dedup; every new version re-uploads everything.
//   stream     — StreamSession::put: content-defined chunks, one store
//                entry per chunk, sealed manifest under the stream tag.
//                Untouched chunks dedup no matter where the edit landed.
//
// Headline metric: dedup ratio (logical bytes / bytes actually uploaded)
// per path, and the stream/whole-call improvement factor. The acceptance
// bar is >= 5x improvement on this workload (the bench exits 2 below it).
//
// Also measured: put/get throughput (MB/s) per path, and the single-chunk
// regression guard — inputs below the minimum chunk size must ride the
// exact whole-call wire path, so a StreamSession put of a small input must
// cost within 5% of a plain per-call execute.
//
// Usage: bench_stream RESULTS.json [--smoke]
//   --smoke (or SPEED_BENCH_SMOKE=1) runs a reduced ~2 s variant for CI.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "workload/stream_corpus.h"

namespace {

using namespace speed;

constexpr std::uint64_t kSeed = 0x57e4bec1ull;

mle::FunctionIdentity bench_identity(runtime::DedupRuntime& rt) {
  rt.libraries().register_library("bench-stream", "1.0",
                                  as_bytes("stream codec v1"));
  return rt.resolve({"bench-stream", "1.0", "bytes put_stream(bytes)"});
}

struct PathResult {
  std::string name;
  std::uint64_t blobs = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t uploaded_bytes = 0;
  double dedup_ratio = 0;
  double seconds = 0;
  double put_mb_per_s = 0;
  std::uint64_t chunks = 0;
  std::uint64_t chunk_hits = 0;
  std::uint64_t whole_hits = 0;

  std::string json() const {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"path\": \"%s\", \"blobs\": %llu, \"total_bytes\": %llu, "
        "\"uploaded_bytes\": %llu, \"dedup_ratio\": %.3f, "
        "\"seconds\": %.3f, \"put_mb_per_s\": %.2f, "
        "\"chunks\": %llu, \"chunk_hits\": %llu, \"whole_hits\": %llu}",
        name.c_str(), static_cast<unsigned long long>(blobs),
        static_cast<unsigned long long>(total_bytes),
        static_cast<unsigned long long>(uploaded_bytes), dedup_ratio,
        seconds, put_mb_per_s, static_cast<unsigned long long>(chunks),
        static_cast<unsigned long long>(chunk_hits),
        static_cast<unsigned long long>(whole_hits));
    return buf;
  }
};

/// The workload: a version chain (each version a small edit of its
/// predecessor), shifted copies of the final version, and one exact
/// duplicate of the base — the only blob whole-call dedup can reuse.
std::vector<Bytes> build_corpus(bool smoke) {
  workload::StreamCorpusConfig config;
  config.blob_bytes = smoke ? 128 * 1024 : 256 * 1024;
  const std::size_t versions = smoke ? 8 : 20;
  std::vector<Bytes> blobs =
      workload::stream_version_chain(config, versions, /*edits_per_version=*/1,
                                     /*edit_bytes=*/64, kSeed);
  const std::vector<std::size_t> shifts =
      smoke ? std::vector<std::size_t>{1} : std::vector<std::size_t>{1, 4096};
  for (const std::size_t shift : shifts) {
    blobs.push_back(workload::shift_stream_blob(blobs.back(), shift, kSeed));
  }
  blobs.push_back(blobs.front());  // exact duplicate: whole-call's best case
  return blobs;
}

runtime::RuntimeConfig bench_config() {
  runtime::RuntimeConfig config;
  config.local_cache = false;  // measure the store path, not the local cache
  config.tracing = false;
  return config;
}

PathResult run_whole_call(const std::vector<Bytes>& blobs) {
  bench::Testbed bed("bench-stream-call", bench::realistic_model(),
                     bench_config());
  const auto fn = bench_identity(bed.rt);
  PathResult r;
  r.name = "whole_call";
  Stopwatch wall;
  for (const Bytes& blob : blobs) {
    const std::uint64_t misses_before = bed.rt.stats().misses;
    (void)bed.rt.execute(fn, blob, [&] { return blob; });
    // A miss means the store had no entry for this exact blob: the result
    // (the blob itself in this storage workload) was uploaded in full.
    if (bed.rt.stats().misses > misses_before) r.uploaded_bytes += blob.size();
    r.total_bytes += blob.size();
  }
  bed.rt.flush();  // include the async PUT drain in the timed window
  r.seconds = wall.elapsed_ms() / 1e3;
  r.blobs = blobs.size();
  r.whole_hits = bed.rt.stats().hits;
  r.dedup_ratio = static_cast<double>(r.total_bytes) / r.uploaded_bytes;
  r.put_mb_per_s = r.total_bytes / 1e6 / r.seconds;
  return r;
}

PathResult run_stream(const std::vector<Bytes>& blobs, double* get_seconds,
                      double* get_mb_per_s) {
  runtime::RuntimeConfig config = bench_config();
  config.batching.enabled = true;  // chunk windows coalesce into batch frames
  bench::Testbed bed("bench-stream-stream", bench::realistic_model(), config);
  runtime::StreamSession session(bed.rt, bench_identity(bed.rt));

  PathResult r;
  r.name = "stream";
  std::vector<runtime::StreamHandle> handles;
  handles.reserve(blobs.size());
  Stopwatch wall;
  for (const Bytes& blob : blobs) {
    handles.push_back(session.put(blob));
    r.total_bytes += blob.size();
  }
  bed.rt.flush();
  r.seconds = wall.elapsed_ms() / 1e3;

  const auto stats = bed.rt.stats();
  r.blobs = blobs.size();
  r.uploaded_bytes = r.total_bytes - stats.stream_bytes_deduped;
  r.chunks = stats.stream_chunks;
  r.chunk_hits = stats.stream_chunk_hits;
  r.whole_hits = stats.stream_whole_hits;
  r.dedup_ratio = static_cast<double>(r.total_bytes) / r.uploaded_bytes;
  r.put_mb_per_s = r.total_bytes / 1e6 / r.seconds;

  // Read every stream back and verify it byte-exactly — a dedup ratio from
  // a path that corrupts data would be meaningless.
  Stopwatch get_wall;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    if (session.get(handles[i]) != blobs[i]) {
      std::fprintf(stderr, "bench_stream: FATAL blob %zu round trip mismatch\n",
                   i);
      std::exit(1);
    }
  }
  *get_seconds = get_wall.elapsed_ms() / 1e3;
  *get_mb_per_s = r.total_bytes / 1e6 / *get_seconds;
  return r;
}

/// Single-chunk guard: sub-minimum inputs must degrade to the whole-call
/// wire path, so their put cost through a StreamSession should match a
/// plain execute. Both sides run synchronous PUTs (async_put off) so the
/// comparison times identical wire work.
struct SingleChunkResult {
  std::size_t trials = 0;
  std::size_t bytes = 0;
  double call_ms = 0;
  double stream_ms = 0;
  double overhead_pct = 0;
};

SingleChunkResult run_single_chunk(bool smoke) {
  SingleChunkResult r;
  r.trials = smoke ? 300 : 2000;
  r.bytes = 1024;  // below ChunkerConfig::min_size: always one chunk
  const std::size_t warmup = r.trials / 10;

  std::vector<Bytes> inputs;
  Xoshiro256 rng(kSeed);
  for (std::size_t i = 0; i < r.trials + warmup; ++i) {
    inputs.push_back(rng.bytes(r.bytes));
  }

  runtime::RuntimeConfig config = bench_config();
  config.async_put = false;

  // Per-op cost = best-of-5-blocks mean, with the two paths' blocks
  // interleaved: the cost model busy-waits, so every clean block measures
  // the same deterministic work; the minimum rejects scheduler-noise
  // spikes, and interleaving keeps a slow period from poisoning only one
  // path's entire measurement window.
  const std::size_t blocks = 5;
  const std::size_t per_block = r.trials / blocks;
  bench::Testbed call_bed("bench-stream-sc-call", bench::realistic_model(),
                          config);
  const auto fn = bench_identity(call_bed.rt);
  bench::Testbed stream_bed("bench-stream-sc-stream",
                            bench::realistic_model(), config);
  runtime::StreamSession session(stream_bed.rt,
                                 bench_identity(stream_bed.rt));
  const auto call_op = [&](std::size_t i) {
    (void)call_bed.rt.execute(fn, inputs[i], [&] { return inputs[i]; });
  };
  const auto stream_op = [&](std::size_t i) { (void)session.put(inputs[i]); };
  for (std::size_t i = 0; i < warmup; ++i) {
    call_op(i);
    stream_op(i);
  }
  double best_call = 1e100, best_stream = 1e100;
  for (std::size_t b = 0; b < blocks; ++b) {
    Stopwatch sw;
    for (std::size_t i = 0; i < per_block; ++i) {
      call_op(warmup + b * per_block + i);
    }
    best_call = std::min(best_call, sw.elapsed_ms() / per_block);
    Stopwatch sw2;
    for (std::size_t i = 0; i < per_block; ++i) {
      stream_op(warmup + b * per_block + i);
    }
    best_stream = std::min(best_stream, sw2.elapsed_ms() / per_block);
  }
  r.call_ms = best_call;
  r.stream_ms = best_stream;
  r.overhead_pct = 100.0 * (r.stream_ms - r.call_ms) / r.call_ms;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bench_stream RESULTS.json [--smoke]\n");
    return 1;
  }
  const bool smoke =
      (argc > 2 && std::strcmp(argv[2], "--smoke") == 0) ||
      std::getenv("SPEED_BENCH_SMOKE") != nullptr;

  const std::vector<Bytes> blobs = build_corpus(smoke);
  std::uint64_t total = 0;
  for (const Bytes& b : blobs) total += b.size();
  std::printf("corpus: %zu blobs, %.1f MB logical\n", blobs.size(),
              total / 1e6);

  const PathResult whole = run_whole_call(blobs);
  double get_seconds = 0, get_mb_per_s = 0;
  const PathResult stream = run_stream(blobs, &get_seconds, &get_mb_per_s);
  const SingleChunkResult sc = run_single_chunk(smoke);

  std::printf("%-11s %9s %9s %11s %10s\n", "path", "uploaded", "ratio",
              "put MB/s", "chunk hits");
  for (const PathResult* p : {&whole, &stream}) {
    std::printf("%-11s %8.2fM %8.2fx %11.2f %10llu\n", p->name.c_str(),
                p->uploaded_bytes / 1e6, p->dedup_ratio, p->put_mb_per_s,
                static_cast<unsigned long long>(p->chunk_hits));
  }
  const double improvement = stream.dedup_ratio / whole.dedup_ratio;
  std::printf("dedup-ratio improvement (stream vs whole-call): %.2fx\n",
              improvement);
  std::printf("stream get: %.2f MB/s\n", get_mb_per_s);
  std::printf("single-chunk put: call %.3f ms, stream %.3f ms (%+.1f%%)\n",
              sc.call_ms, sc.stream_ms, sc.overhead_pct);

  std::string json = "{\n  \"bench\": \"stream\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"workload\": {\"blobs\": %zu, \"total_bytes\": %llu, "
                "\"edits_per_version\": 1, \"edit_bytes\": 64},\n",
                blobs.size(), static_cast<unsigned long long>(total));
  json += buf;
  json += "  \"paths\": [\n    " + whole.json() + ",\n    " + stream.json() +
          "\n  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"dedup_ratio_improvement\": %.3f,\n"
                "  \"stream_get\": {\"seconds\": %.3f, \"mb_per_s\": %.2f},\n"
                "  \"single_chunk\": {\"trials\": %zu, \"bytes\": %zu, "
                "\"call_ms\": %.4f, \"stream_ms\": %.4f, "
                "\"overhead_pct\": %.2f}\n",
                improvement, get_seconds, get_mb_per_s, sc.trials, sc.bytes,
                sc.call_ms, sc.stream_ms, sc.overhead_pct);
  json += buf;
  json += "}\n";

  std::FILE* out = std::fopen(argv[1], "w");
  if (out == nullptr) {
    std::perror("bench_stream: fopen");
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  bench::write_telemetry_snapshot(argv[1]);
  std::printf("wrote %s\n", argv[1]);

  // Acceptance: >= 5x dedup-ratio improvement and single-chunk puts within
  // 5% of the per-call path. Smoke runs report but never gate.
  const bool ok = improvement >= 5.0 && sc.overhead_pct <= 5.0;
  return ok || smoke ? 0 : 2;
}
