// Fig. 6 regeneration: ResultStore service time and concurrent throughput.
//
// Part 1 (the paper's figure): 100 GET and 100 PUT operations per payload
// size (1 KB - 1 MB), all with distinct tags, against a store running (a)
// with the realistic enclave cost model and (b) with the model disabled
// ("w/o SGX"). Expected shape: the with-SGX series is markedly slower at
// small payloads — dominated by ECALL/OCALL switches — and the gap narrows
// as payload size grows and data-touching costs take over.
//
// Part 2 (lock-striping scaling): closed-loop GET throughput with 1/2/4/8
// client threads against a single-mutex store (shards = 1) and a sharded
// store (shards = 8), over a Zipf-skewed tag stream. Each request carries a
// simulated in-enclave service time (CostModel::store_service_ns) charged
// inside the shard critical section, and the cost model runs in kSleep mode
// so waiting threads park instead of spinning: a single-core harness then
// behaves like an N-core store machine, and the measured variable is lock
// granularity, not host core count. A raw matrix (no simulated service
// time) is reported alongside for transparency — on a single-core host it
// shows ~1x, which is exactly what honest wall-clock numbers look like when
// nothing can physically run in parallel.
//
// Output: human-readable tables on stdout, machine-readable JSON to the
// path given as argv[1] (default: BENCH_fig6.json in the working dir).
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "crypto/drbg.h"
#include "workload/synthetic.h"

namespace {

using namespace speed;

constexpr std::size_t kSizes[] = {1024, 10 * 1024, 100 * 1024, 1024 * 1024};
constexpr int kOps = 100;

serialize::Tag nth_tag(std::uint64_t base, std::uint64_t n) {
  serialize::Tag t{};
  for (int i = 0; i < 8; ++i) {
    t[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(base >> (8 * i));
    t[8 + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(n >> (8 * i));
  }
  return t;
}

struct Series {
  double put_ms;  ///< total for kOps PUTs
  double get_ms;  ///< total for kOps GETs
};

Series run_series(sgx::CostModel model, std::size_t payload_bytes,
                  std::uint64_t tag_base) {
  sgx::Platform platform(model);
  store::ResultStore store(platform);
  crypto::Drbg drbg(to_bytes("fig6"));

  std::vector<serialize::PutRequest> puts;
  puts.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    serialize::PutRequest put;
    put.tag = nth_tag(tag_base, static_cast<std::uint64_t>(i));
    put.requester.fill(0x01);
    put.entry.challenge = drbg.bytes(32);
    put.entry.wrapped_key = drbg.bytes(16);
    put.entry.result_ct = drbg.bytes(payload_bytes);
    puts.push_back(std::move(put));
  }

  Series s{};
  {
    Stopwatch sw;
    for (const auto& put : puts) {
      store.handle(serialize::encode_message(put));
    }
    s.put_ms = sw.elapsed_ms();
  }
  {
    Stopwatch sw;
    for (int i = 0; i < kOps; ++i) {
      serialize::GetRequest get;
      get.tag = nth_tag(tag_base, static_cast<std::uint64_t>(i));
      get.requester.fill(0x01);
      store.handle(serialize::encode_message(get));
    }
    s.get_ms = sw.elapsed_ms();
  }
  return s;
}

// ------------------------------------------------- concurrent throughput

constexpr std::size_t kUniverse = 1024;   ///< distinct hot computations
constexpr double kZipfSkew = 0.99;        ///< YCSB-style skew
constexpr std::size_t kOpsPerThread = 2000;
constexpr std::size_t kPayloadBytes = 512;
constexpr std::uint64_t kServiceNs = 20'000;  ///< simulated per-GET service

struct ThroughputPoint {
  int threads;
  std::size_t shards;
  std::size_t ops;
  double wall_ms;
  double ops_per_sec;
  bench::LatencySummary latency;  ///< per-GET client-observed latency
};

/// Closed loop: `threads` clients each issue kOpsPerThread GETs from their
/// own Zipf stream against a preloaded store. Returns aggregate throughput.
ThroughputPoint run_throughput(const sgx::CostModel& model, int threads,
                               std::size_t shards) {
  sgx::Platform platform(model);
  store::StoreConfig cfg;
  cfg.shards = shards;
  store::ResultStore store(platform, cfg);

  crypto::Drbg drbg(to_bytes("fig6-throughput"));
  for (std::uint64_t n = 0; n < kUniverse; ++n) {
    serialize::PutRequest put;
    put.tag = nth_tag(0xbeef, n);
    put.requester.fill(0x01);
    put.entry.challenge = drbg.bytes(32);
    put.entry.wrapped_key = drbg.bytes(16);
    put.entry.result_ct = drbg.bytes(kPayloadBytes);
    store.put(put);
  }

  // Pre-generate each thread's request stream (generation stays out of the
  // timed region) — the same streams for every (threads, shards) cell.
  std::vector<std::vector<std::size_t>> streams;
  for (int t = 0; t < threads; ++t) {
    streams.push_back(workload::zipf_request_stream(
        kUniverse, kOpsPerThread, kZipfSkew,
        /*seed=*/42 + static_cast<std::uint64_t>(t)));
  }

  // One recorder per thread, merged after the run: the telemetry histogram
  // merge is exact, so the union quantiles are identical to recording every
  // sample into a single histogram.
  std::vector<bench::LatencyRecorder> recorders(
      static_cast<std::size_t>(threads));

  std::vector<std::thread> workers;
  Stopwatch sw;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&store, &streams, &recorders, t] {
      auto& rec = recorders[static_cast<std::size_t>(t)];
      for (const std::size_t idx : streams[static_cast<std::size_t>(t)]) {
        serialize::GetRequest get;
        get.tag = nth_tag(0xbeef, idx);
        get.requester.fill(0x01);
        rec.time([&] { store.get(get); });
      }
    });
  }
  for (auto& w : workers) w.join();
  const double wall_ms = sw.elapsed_ms();

  ThroughputPoint p{};
  p.threads = threads;
  p.shards = shards;
  p.ops = static_cast<std::size_t>(threads) * kOpsPerThread;
  p.wall_ms = wall_ms;
  p.ops_per_sec = 1000.0 * static_cast<double>(p.ops) / wall_ms;
  p.latency = bench::summarize(recorders);
  return p;
}

sgx::CostModel emulated_store_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;  // isolate the store's internal concurrency
  m.ocall_ns = 0;
  m.epc_page_swap_ns = 0;
  m.store_service_ns = kServiceNs;
  m.wait = sgx::CostModel::Wait::kSleep;
  return m;
}

void json_points(std::string& out, const std::vector<ThroughputPoint>& pts) {
  out += "[";
  for (std::size_t i = 0; i < pts.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"threads\": %d, \"shards\": %zu, \"ops\": %zu, "
                  "\"wall_ms\": %.3f, \"ops_per_sec\": %.1f, \"get_latency\": ",
                  i ? ", " : "", pts[i].threads, pts[i].shards, pts[i].ops,
                  pts[i].wall_ms, pts[i].ops_per_sec);
    out += buf;
    out += pts[i].latency.json();
    out += "}";
  }
  out += "]";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_fig6.json";

  // ------------------------------------------ Part 1: service-time table
  std::printf("=== Fig. 6: ResultStore throughput (%d ops per point) ===\n\n",
              kOps);

  TablePrinter table({"Size (KB)", "PUT w/ SGX (ms)", "GET w/ SGX (ms)",
                      "PUT w/o SGX (ms)", "GET w/o SGX (ms)", "PUT gap",
                      "GET gap"});

  std::string json_sizes = "[";
  std::uint64_t tag_base = 1;
  bool first = true;
  for (const std::size_t size : kSizes) {
    const Series with_sgx =
        run_series(bench::realistic_model(), size, tag_base++);
    const Series without_sgx =
        run_series(sgx::CostModel::disabled(), size, tag_base++);
    table.add_row(
        {std::to_string(size / 1024), TablePrinter::fmt(with_sgx.put_ms, 2),
         TablePrinter::fmt(with_sgx.get_ms, 2),
         TablePrinter::fmt(without_sgx.put_ms, 2),
         TablePrinter::fmt(without_sgx.get_ms, 2),
         TablePrinter::fmt(with_sgx.put_ms / without_sgx.put_ms, 1) + "x",
         TablePrinter::fmt(with_sgx.get_ms / without_sgx.get_ms, 1) + "x"});
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"size_kb\": %zu, \"put_ms_sgx\": %.3f, "
                  "\"get_ms_sgx\": %.3f, \"put_ms_nosgx\": %.3f, "
                  "\"get_ms_nosgx\": %.3f}",
                  first ? "" : ", ", size / 1024, with_sgx.put_ms,
                  with_sgx.get_ms, without_sgx.put_ms, without_sgx.get_ms);
    json_sizes += buf;
    first = false;
  }
  json_sizes += "]";
  table.print();

  std::puts("\nShape check vs paper Fig. 6: with-SGX is much slower at 1KB");
  std::puts("(ECALL/OCALL switches dominate) and the gap narrows toward 1MB;");
  std::puts("GET and PUT track each other closely.");

  // --------------------------------- Part 2: lock-striping GET throughput
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "\n=== Sharded-store GET throughput (Zipf %.2f over %zu tags, "
      "%zu ops/thread, %llu us simulated service, host cores: %u) ===\n\n",
      kZipfSkew, kUniverse, kOpsPerThread,
      static_cast<unsigned long long>(kServiceNs / 1000), hw);

  const sgx::CostModel emulated = emulated_store_model();
  std::vector<ThroughputPoint> emu_points;
  TablePrinter tp({"Threads", "1 shard (op/s)", "8 shards (op/s)", "Speedup",
                   "8sh p50 (us)", "8sh p99 (us)"});
  for (const int threads : {1, 2, 4, 8}) {
    const ThroughputPoint single = run_throughput(emulated, threads, 1);
    const ThroughputPoint sharded = run_throughput(emulated, threads, 8);
    emu_points.push_back(single);
    emu_points.push_back(sharded);
    tp.add_row({std::to_string(threads),
                TablePrinter::fmt(single.ops_per_sec, 0),
                TablePrinter::fmt(sharded.ops_per_sec, 0),
                TablePrinter::fmt(sharded.ops_per_sec / single.ops_per_sec, 2) +
                    "x",
                TablePrinter::fmt(sharded.latency.p50_us, 1),
                TablePrinter::fmt(sharded.latency.p99_us, 1)});
  }
  tp.print();
  const double ratio_8t = emu_points[7].ops_per_sec / emu_points[6].ops_per_sec;
  std::printf(
      "\n8 threads / 8 shards vs single-mutex baseline: %.2fx GET "
      "throughput.\n",
      ratio_8t);
  std::puts(
      "(kSleep wait mode: threads park through the simulated service time,\n"
      "so the store behaves like an N-core deployment and the measurement\n"
      "isolates lock granularity rather than host core count.)");

  // Raw matrix: no simulated service time, honest single-host wall clock.
  std::vector<ThroughputPoint> raw_points;
  for (const int threads : {1, 8}) {
    raw_points.push_back(run_throughput(sgx::CostModel::disabled(), threads, 1));
    raw_points.push_back(run_throughput(sgx::CostModel::disabled(), threads, 8));
  }
  std::printf(
      "\nRaw CPU-bound matrix (no simulated service): 8t speedup %.2fx on "
      "%u host core(s).\n",
      raw_points[3].ops_per_sec / raw_points[2].ops_per_sec, hw);

  // ------------------------------------------------------- JSON emission
  std::string json = "{\n  \"bench\": \"fig6_store\",\n";
  json += "  \"hardware_concurrency\": " + std::to_string(hw) + ",\n";
  json += "  \"service_time_table\": " + json_sizes + ",\n";
  json += "  \"throughput\": {\n    \"mode\": \"emulated_store_service\",\n";
  json += "    \"store_service_ns\": " + std::to_string(kServiceNs) + ",\n";
  json += "    \"wait\": \"sleep\",\n";
  json += "    \"universe\": " + std::to_string(kUniverse) + ",\n";
  char skew[32];
  std::snprintf(skew, sizeof(skew), "%.2f", kZipfSkew);
  json += std::string("    \"zipf_skew\": ") + skew + ",\n";
  json += "    \"ops_per_thread\": " + std::to_string(kOpsPerThread) + ",\n";
  json += "    \"points\": ";
  json_points(json, emu_points);
  char ratio[64];
  std::snprintf(ratio, sizeof(ratio), "%.3f", ratio_8t);
  json += ",\n    \"speedup_8threads_8shards_vs_1shard\": ";
  json += ratio;
  json += "\n  },\n  \"raw_cpu\": {\n    \"mode\": \"no_simulated_service\",\n";
  json += "    \"points\": ";
  json_points(json, raw_points);
  json += "\n  }\n}\n";

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("\nWrote %s\n", json_path.c_str());

  // Telemetry snapshot next to the results. Collectors deregister when
  // their component dies, so scrape while a full deployment is live: the
  // snapshot then covers runtime, per-shard store, channel, and enclave
  // families on top of the process-cumulative transition counters from the
  // runs above.
  {
    bench::Testbed bed("fig6-telemetry");
    bed.rt.libraries().register_library("fig6", "1", to_bytes("fig6-code"));
    const auto fn = bed.rt.resolve({"fig6", "1", "echo"});
    const Bytes input = to_bytes("telemetry-sample");
    for (int i = 0; i < 3; ++i) {
      bed.rt.execute(fn, input, [&] { return input; });
    }
    bed.rt.flush();
    const std::string telemetry_path =
        bench::write_telemetry_snapshot(json_path);
    if (telemetry_path.empty()) {
      std::fprintf(stderr, "cannot write telemetry snapshot\n");
      return 1;
    }
    std::printf("Wrote %s\n", telemetry_path.c_str());
  }
  return 0;
}
