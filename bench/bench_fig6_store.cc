// Fig. 6 regeneration: ResultStore throughput, with and without SGX.
//
// 100 GET and 100 PUT operations per payload size (1 KB - 1 MB), all with
// distinct tags, against a store running (a) with the realistic enclave
// cost model and (b) with the model disabled ("w/o SGX"). Expected shape
// (paper Fig. 6): the with-SGX series is markedly slower at small payloads
// — dominated by ECALL/OCALL switches — and the gap narrows as payload
// size grows and data-touching costs take over.
#include <cstdio>

#include "bench_common.h"
#include "crypto/drbg.h"

namespace {

using namespace speed;

constexpr std::size_t kSizes[] = {1024, 10 * 1024, 100 * 1024, 1024 * 1024};
constexpr int kOps = 100;

serialize::Tag nth_tag(std::uint64_t base, std::uint64_t n) {
  serialize::Tag t{};
  for (int i = 0; i < 8; ++i) {
    t[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(base >> (8 * i));
    t[8 + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(n >> (8 * i));
  }
  return t;
}

struct Series {
  double put_ms;  ///< total for kOps PUTs
  double get_ms;  ///< total for kOps GETs
};

Series run_series(sgx::CostModel model, std::size_t payload_bytes,
                  std::uint64_t tag_base) {
  sgx::Platform platform(model);
  store::ResultStore store(platform);
  crypto::Drbg drbg(to_bytes("fig6"));

  std::vector<serialize::PutRequest> puts;
  puts.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    serialize::PutRequest put;
    put.tag = nth_tag(tag_base, static_cast<std::uint64_t>(i));
    put.requester.fill(0x01);
    put.entry.challenge = drbg.bytes(32);
    put.entry.wrapped_key = drbg.bytes(16);
    put.entry.result_ct = drbg.bytes(payload_bytes);
    puts.push_back(std::move(put));
  }

  Series s{};
  {
    Stopwatch sw;
    for (const auto& put : puts) {
      store.handle(serialize::encode_message(put));
    }
    s.put_ms = sw.elapsed_ms();
  }
  {
    Stopwatch sw;
    for (int i = 0; i < kOps; ++i) {
      serialize::GetRequest get;
      get.tag = nth_tag(tag_base, static_cast<std::uint64_t>(i));
      get.requester.fill(0x01);
      store.handle(serialize::encode_message(get));
    }
    s.get_ms = sw.elapsed_ms();
  }
  return s;
}

}  // namespace

int main() {
  std::printf("=== Fig. 6: ResultStore throughput (%d ops per point) ===\n\n",
              kOps);

  TablePrinter table({"Size (KB)", "PUT w/ SGX (ms)", "GET w/ SGX (ms)",
                      "PUT w/o SGX (ms)", "GET w/o SGX (ms)", "PUT gap",
                      "GET gap"});

  std::uint64_t tag_base = 1;
  for (const std::size_t size : kSizes) {
    const Series with_sgx =
        run_series(bench::realistic_model(), size, tag_base++);
    const Series without_sgx =
        run_series(sgx::CostModel::disabled(), size, tag_base++);
    table.add_row(
        {std::to_string(size / 1024), TablePrinter::fmt(with_sgx.put_ms, 2),
         TablePrinter::fmt(with_sgx.get_ms, 2),
         TablePrinter::fmt(without_sgx.put_ms, 2),
         TablePrinter::fmt(without_sgx.get_ms, 2),
         TablePrinter::fmt(with_sgx.put_ms / without_sgx.put_ms, 1) + "x",
         TablePrinter::fmt(with_sgx.get_ms / without_sgx.get_ms, 1) + "x"});
  }
  table.print();

  std::puts("\nShape check vs paper Fig. 6: with-SGX is much slower at 1KB");
  std::puts("(ECALL/OCALL switches dominate) and the gap narrows toward 1MB;");
  std::puts("GET and PUT track each other closely.");
  return 0;
}
