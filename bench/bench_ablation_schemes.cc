// Ablation A1 (google-benchmark): the §III-C cross-application RCE scheme
// vs the §III-B basic single-key scheme.
//
// Measures the protect (miss path) and recover (hit path) costs of both
// result-encryption schemes across result sizes. Expected: RCE pays two
// extra SHA-256 passes over (func, input, r) plus the XOR key wrap; the
// basic scheme is cheaper but loses cross-application security (single
// point of compromise — see mle_test.cc). This quantifies the price of the
// paper's headline key-management design.
#include <benchmark/benchmark.h>

#include "crypto/drbg.h"
#include "mle/rce.h"

namespace {

using namespace speed;

mle::FunctionIdentity make_fn() {
  mle::FunctionIdentity fn;
  fn.descriptor = {"bench-lib", "1.0", "bytes f(bytes)"};
  fn.code_measurement =
      sgx::measure_library("bench-lib", "1.0", as_bytes("bench-code"));
  return fn;
}

void BM_RceProtect(benchmark::State& state) {
  crypto::Drbg drbg(to_bytes("ablation"));
  const mle::FunctionIdentity fn = make_fn();
  const Bytes input = drbg.bytes(static_cast<std::size_t>(state.range(0)));
  const Bytes result = drbg.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto entry = mle::ResultCipher::protect(fn, input, result, drbg);
    benchmark::DoNotOptimize(entry);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

void BM_RceRecover(benchmark::State& state) {
  crypto::Drbg drbg(to_bytes("ablation"));
  const mle::FunctionIdentity fn = make_fn();
  const Bytes input = drbg.bytes(static_cast<std::size_t>(state.range(0)));
  const Bytes result = drbg.bytes(static_cast<std::size_t>(state.range(0)));
  const auto entry = mle::ResultCipher::protect(fn, input, result, drbg);
  for (auto _ : state) {
    auto out = mle::ResultCipher::recover(fn, input, entry);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

void BM_BasicProtect(benchmark::State& state) {
  crypto::Drbg drbg(to_bytes("ablation"));
  const mle::BasicResultCipher cipher(drbg.bytes(16));
  const mle::FunctionIdentity fn = make_fn();
  const Bytes input = drbg.bytes(static_cast<std::size_t>(state.range(0)));
  const Bytes result = drbg.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto entry = cipher.protect(fn, input, result, drbg);
    benchmark::DoNotOptimize(entry);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

void BM_BasicRecover(benchmark::State& state) {
  crypto::Drbg drbg(to_bytes("ablation"));
  const mle::BasicResultCipher cipher(drbg.bytes(16));
  const mle::FunctionIdentity fn = make_fn();
  const Bytes input = drbg.bytes(static_cast<std::size_t>(state.range(0)));
  const Bytes result = drbg.bytes(static_cast<std::size_t>(state.range(0)));
  const auto entry = cipher.protect(fn, input, result, drbg);
  for (auto _ : state) {
    auto out = cipher.recover(fn, input, entry);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}

constexpr std::int64_t kLo = 1 << 10;
constexpr std::int64_t kHi = 1 << 20;

BENCHMARK(BM_RceProtect)->Range(kLo, kHi);
BENCHMARK(BM_RceRecover)->Range(kLo, kHi);
BENCHMARK(BM_BasicProtect)->Range(kLo, kHi);
BENCHMARK(BM_BasicRecover)->Range(kLo, kHi);

}  // namespace

BENCHMARK_MAIN();
