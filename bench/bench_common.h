// Shared scaffolding for the figure/table regeneration harnesses.
//
// Each bench binary wires up the same deployment the paper evaluates: one
// platform with the realistic SGX cost model, one encrypted ResultStore, and
// application enclaves talking to it through attested secure channels. The
// timing helpers below implement the paper's three measurement modes:
//
//   Baseline    — the ported function runs inside the app enclave, no SPEED.
//   Init.Comp.  — first execution through SPEED (miss path, including the
//                 secure storing of the result, i.e. flush of the async PUT).
//   Subsq.Comp. — repeated execution through SPEED (hit path).
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/table.h"
#include "runtime/speed.h"
#include "telemetry/exposition.h"
#include "telemetry/metrics.h"

namespace speed::bench {

inline sgx::CostModel realistic_model() {
  return sgx::CostModel{};  // defaults documented in sgx/cost_model.h
}

struct Testbed {
  explicit Testbed(const std::string& app_identity,
                   sgx::CostModel model = realistic_model(),
                   runtime::RuntimeConfig config = runtime::RuntimeConfig{})
      : platform(model),
        store(platform),
        enclave(platform.create_enclave(app_identity)),
        connection(store::connect_app(store, *enclave)),
        rt(*enclave, std::move(connection.session_key), std::move(connection.transport),
           std::move(config)) {}

  sgx::Platform platform;
  store::ResultStore store;
  std::unique_ptr<sgx::Enclave> enclave;
  store::AppConnection connection;
  runtime::DedupRuntime rt;
};

/// Mean wall-clock milliseconds of `fn` over `trials` runs.
inline double time_ms(int trials, const std::function<void()>& fn) {
  double total = 0;
  for (int t = 0; t < trials; ++t) {
    Stopwatch sw;
    fn();
    total += sw.elapsed_ms();
  }
  return total / trials;
}

inline std::string pct(double value, double baseline) {
  return TablePrinter::fmt(100.0 * value / baseline, 1) + "%";
}

/// Per-sample latency summary backed by the production telemetry histogram,
/// so benches and the exported speed_* metrics report percentiles from one
/// implementation. One recorder per worker thread, merged at the end —
/// merging is exact (see telemetry/metrics.h), so the merged quantiles are
/// identical to single-recorder quantiles over the union of samples.
class LatencyRecorder {
 public:
  void record_ns(std::uint64_t ns) { hist_.record(ns); }

  /// Time one call and record it.
  template <typename Fn>
  void time(Fn&& fn) {
    Stopwatch sw;
    fn();
    record_ns(sw.elapsed_ns());
  }

  telemetry::HistogramSnapshot snapshot() const { return hist_.snapshot(); }

 private:
  telemetry::Histogram hist_;
};

struct LatencySummary {
  std::uint64_t count = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double max_us = 0;

  std::string json() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\": %llu, \"mean_us\": %.2f, \"p50_us\": %.2f, "
                  "\"p95_us\": %.2f, \"p99_us\": %.2f, \"max_us\": %.2f}",
                  static_cast<unsigned long long>(count), mean_us, p50_us,
                  p95_us, p99_us, max_us);
    return buf;
  }
};

inline LatencySummary summarize(const telemetry::HistogramSnapshot& s) {
  LatencySummary out;
  out.count = s.count;
  out.mean_us = s.mean() / 1000.0;
  out.p50_us = static_cast<double>(s.quantile(0.50)) / 1000.0;
  out.p95_us = static_cast<double>(s.quantile(0.95)) / 1000.0;
  out.p99_us = static_cast<double>(s.quantile(0.99)) / 1000.0;
  out.max_us = static_cast<double>(s.max) / 1000.0;
  return out;
}

/// Merge per-thread recorders and summarize the union.
inline LatencySummary summarize(const std::vector<LatencyRecorder>& recorders) {
  telemetry::HistogramSnapshot merged;
  for (const auto& r : recorders) merged.merge(r.snapshot());
  return summarize(merged);
}

/// Write the process-wide telemetry snapshot next to a bench's JSON output
/// (e.g. BENCH_fig6.json -> BENCH_fig6.telemetry.json). Returns the path.
inline std::string write_telemetry_snapshot(const std::string& results_path) {
  std::string path = results_path;
  const auto dot = path.rfind(".json");
  if (dot != std::string::npos && dot == path.size() - 5) {
    path.replace(dot, 5, ".telemetry.json");
  } else {
    path += ".telemetry.json";
  }
  const std::string json = telemetry::snapshot_json();
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return {};
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  return path;
}

}  // namespace speed::bench
