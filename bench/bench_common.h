// Shared scaffolding for the figure/table regeneration harnesses.
//
// Each bench binary wires up the same deployment the paper evaluates: one
// platform with the realistic SGX cost model, one encrypted ResultStore, and
// application enclaves talking to it through attested secure channels. The
// timing helpers below implement the paper's three measurement modes:
//
//   Baseline    — the ported function runs inside the app enclave, no SPEED.
//   Init.Comp.  — first execution through SPEED (miss path, including the
//                 secure storing of the result, i.e. flush of the async PUT).
//   Subsq.Comp. — repeated execution through SPEED (hit path).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/table.h"
#include "runtime/speed.h"

namespace speed::bench {

inline sgx::CostModel realistic_model() {
  return sgx::CostModel{};  // defaults documented in sgx/cost_model.h
}

struct Testbed {
  explicit Testbed(const std::string& app_identity,
                   sgx::CostModel model = realistic_model(),
                   runtime::RuntimeConfig config = runtime::RuntimeConfig{})
      : platform(model),
        store(platform),
        enclave(platform.create_enclave(app_identity)),
        connection(store::connect_app(store, *enclave)),
        rt(*enclave, connection.session_key, std::move(connection.transport),
           std::move(config)) {}

  sgx::Platform platform;
  store::ResultStore store;
  std::unique_ptr<sgx::Enclave> enclave;
  store::AppConnection connection;
  runtime::DedupRuntime rt;
};

/// Mean wall-clock milliseconds of `fn` over `trials` runs.
inline double time_ms(int trials, const std::function<void()>& fn) {
  double total = 0;
  for (int t = 0; t < trials; ++t) {
    Stopwatch sw;
    fn();
    total += sw.elapsed_ms();
  }
  return total / trials;
}

inline std::string pct(double value, double baseline) {
  return TablePrinter::fmt(100.0 * value / baseline, 1) + "%";
}

}  // namespace speed::bench
