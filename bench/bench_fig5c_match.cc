// Fig. 5(c) regeneration: pattern matching with a large rule set.
//
// The paper scans packet batches against >3,700 Snort rules and reports
// 316-412x speedups — matching many rules is expensive, the alert list is
// tiny, so deduplication is maximally favourable. We scan batches of
// synthetic packets against a synthetic rule set of comparable size and
// vary the batch size (the paper's input-volume axis).
#include <cstdio>
#include <numeric>

#include "apps/match/ruleset.h"
#include "bench_common.h"
#include "workload/synthetic.h"

namespace {

using namespace speed;

constexpr std::size_t kRuleCount = 3700;
constexpr std::size_t kBatchSizes[] = {25, 50, 100, 200};
constexpr int kTrials = 2;

}  // namespace

int main() {
  std::puts("=== Fig. 5(c): pattern matching (Aho-Corasick + pcre rules) ===");
  std::printf("(%zu synthetic Snort-like rules; batches of 512B packets)\n\n",
              kRuleCount);

  // ~10% of rules carry a pcre after their contents, and ~5% are pcre-only
  // (no content gate) — those must be regex-executed against every packet,
  // which is what makes the un-deduplicated baseline so expensive.
  const auto rules = workload::synth_ruleset(kRuleCount, 42, 0.1, 0.05);
  const match::RuleSet ruleset(rules);

  bench::Testbed bed("match-bench-app");
  bed.rt.libraries().register_library(match::kLibraryFamily,
                                      match::kLibraryVersion,
                                      as_bytes("pcre-code-v1"));
  // Paper-faithful computation: per-rule content search + pcre_exec over
  // every payload, no shared automaton (§V: "the exact functions we are
  // going to deduplicate are ... pcre_exec(.)").
  runtime::Deduplicable<std::vector<std::uint64_t>(const std::vector<Bytes>&)>
      dedup_scan(bed.rt,
                 {match::kLibraryFamily, match::kLibraryVersion,
                  "vector<u64> pcre_exec_batch(payloads)"},
                 [&](const std::vector<Bytes>& batch) {
                   return ruleset.scan_sequential_batch(batch);
                 });

  TablePrinter table({"Packets", "Baseline (ms)", "Init.Comp. (ms)", "Init. %",
                      "Subsq.Comp. (ms)", "Subsq. %", "Speedup"});

  std::uint64_t seed = 300;
  for (const std::size_t batch_size : kBatchSizes) {
    const auto make_batch = [&](std::uint64_t s) {
      const auto trace =
          workload::synth_packet_trace(batch_size, 512, rules, 0.05, s);
      std::vector<Bytes> payloads;
      payloads.reserve(trace.size());
      for (const auto& p : trace) payloads.push_back(p.payload);
      return payloads;
    };

    const auto baseline_batch = make_batch(seed++);
    const double baseline_ms = bench::time_ms(kTrials, [&] {
      bed.enclave->ecall([&] {
        const auto counts = ruleset.scan_sequential_batch(baseline_batch);
        __asm__ volatile("" : : "m"(counts) : "memory");
      });
    });

    double init_total = 0;
    for (int t = 0; t < kTrials; ++t) {
      const auto batch = make_batch(seed++);
      Stopwatch sw;
      dedup_scan(batch);
      bed.rt.flush();
      init_total += sw.elapsed_ms();
    }
    const double init_ms = init_total / kTrials;

    const auto hot = make_batch(seed++);
    dedup_scan(hot);
    bed.rt.flush();
    const double subsq_ms = bench::time_ms(kTrials * 3, [&] { dedup_scan(hot); });

    table.add_row({std::to_string(batch_size),
                   TablePrinter::fmt(baseline_ms, 2),
                   TablePrinter::fmt(init_ms, 2),
                   bench::pct(init_ms, baseline_ms),
                   TablePrinter::fmt(subsq_ms, 3),
                   bench::pct(subsq_ms, baseline_ms),
                   TablePrinter::fmt(baseline_ms / subsq_ms, 1) + "x"});
  }
  table.print();
  std::puts("\nShape check vs paper Fig. 5(c): the largest speedups of the");
  std::puts("four case studies (paper: 316-412x) and negligible Init.Comp.");
  std::puts("overhead — the scan dominates, the alert list is tiny.");
  return 0;
}
