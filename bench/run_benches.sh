#!/usr/bin/env bash
# Run the Fig. 6 store benchmark and drop its machine-readable results at
# the repo root as BENCH_fig6.json (the committed reference numbers). The
# bench also writes BENCH_fig6.telemetry.json — the process-wide telemetry
# snapshot (speed_* metric families) captured at the end of the run.
#
# Usage: bench/run_benches.sh [build-dir]
set -euo pipefail

repo_root=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
bench="$build_dir/bench/bench_fig6_store"

if [ ! -x "$bench" ]; then
  echo "building $bench ..."
  cmake -B "$build_dir" -S "$repo_root"
  cmake --build "$build_dir" --target bench_fig6_store -j
fi

if [ ! -x "$bench" ]; then
  echo "error: bench binary missing after build: $bench" >&2
  exit 1
fi

"$bench" "$repo_root/BENCH_fig6.json"
echo "results:   $repo_root/BENCH_fig6.json"
echo "telemetry: $repo_root/BENCH_fig6.telemetry.json"

# Durability overhead: file-backed store (sealed WAL + blob segments) vs the
# in-memory arena, plus cold-start WAL replay times.
dur_bench="$build_dir/bench/bench_durability"
if [ ! -x "$dur_bench" ]; then
  echo "building $dur_bench ..."
  cmake --build "$build_dir" --target bench_durability -j
fi
"$dur_bench" "$repo_root/BENCH_durability.json"
echo "results:   $repo_root/BENCH_durability.json"

# Replicated cluster: routing/quorum overhead vs node count plus the
# kill-one-node availability trace (acceptance bar > 99%).
cluster_bench="$build_dir/bench/bench_cluster"
if [ ! -x "$cluster_bench" ]; then
  echo "building $cluster_bench ..."
  cmake --build "$build_dir" --target bench_cluster -j
fi
"$cluster_bench" "$repo_root/BENCH_cluster.json"
echo "results:   $repo_root/BENCH_cluster.json"

# Batched wire protocol + switchless transitions: GET throughput vs client
# micro-batch size against the epoll server (acceptance bar: >= 2x at
# batch >= 16 over the v1 per-op protocol; the bench exits 2 below that).
batch_bench="$build_dir/bench/bench_batch"
if [ ! -x "$batch_bench" ]; then
  echo "building $batch_bench ..."
  cmake --build "$build_dir" --target bench_batch -j
fi
# (bench_batch honors SPEED_BENCH_SMOKE=1 for the ~2 s CI variant.)
"$batch_bench" "$repo_root/BENCH_batch.json"
echo "results:   $repo_root/BENCH_batch.json"
echo "telemetry: $repo_root/BENCH_batch.telemetry.json"

# Streaming chunked dedup: dedup ratio + throughput of StreamSession vs
# whole-call dedup on an edited/shifted version-chain workload (acceptance
# bar: >= 5x dedup-ratio improvement, single-chunk puts within 5% of the
# per-call path; the bench exits 2 below the bar). Honors --smoke /
# SPEED_BENCH_SMOKE=1 for the reduced CI variant.
stream_bench="$build_dir/bench/bench_stream"
if [ ! -x "$stream_bench" ]; then
  echo "building $stream_bench ..."
  cmake --build "$build_dir" --target bench_stream -j
fi
"$stream_bench" "$repo_root/BENCH_stream.json"
echo "results:   $repo_root/BENCH_stream.json"
echo "telemetry: $repo_root/BENCH_stream.telemetry.json"

# Two-tier metadata footprint: entries per MB of EPC charge with the full
# record spilled to the sealed tier, fault-in latency, and the Fig. 6
# 8-thread/8-shard parity cell (acceptance bar: >= 4x density vs the legacy
# map-of-nodes layout; the bench exits 2 below that). Pass --smoke for the
# reduced CI variant.
meta_bench="$build_dir/bench/bench_metadata"
if [ ! -x "$meta_bench" ]; then
  echo "building $meta_bench ..."
  cmake --build "$build_dir" --target bench_metadata -j
fi
"$meta_bench" "$repo_root/BENCH_metadata.json"
echo "results:   $repo_root/BENCH_metadata.json"
