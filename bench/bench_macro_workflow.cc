// Macro benchmark: the paper's Fig. 1 deployment, end to end.
//
// Three SGX applications share one machine and one encrypted ResultStore:
// a virus scanner (per-rule pcre matching), a compression gateway (DEFLATE),
// and a BoW analytics service (MapReduce). Clients resubmit popular inputs
// (Zipf), and the scanner/gateway overlap on some inputs. We measure the
// whole mixed workload with SPEED vs the same workload recomputing
// everything in-enclave — the system-level "so what" of the paper's design,
// complementing the per-function Fig. 5 numbers.
#include <cstdio>

#include "apps/deflate/deflate.h"
#include "apps/mapreduce/bow.h"
#include "apps/match/ruleset.h"
#include "bench_common.h"
#include "workload/synthetic.h"

namespace {

using namespace speed;

constexpr std::size_t kDistinctFiles = 24;
constexpr std::size_t kRequestsPerApp = 120;

struct Workload {
  std::vector<Bytes> files;                       // scanner + gateway inputs
  std::vector<std::vector<std::string>> batches;  // analytics inputs
  std::vector<std::size_t> stream;                // shared Zipf request order
};

Workload make_workload(const std::vector<match::Rule>& rules) {
  Workload w;
  const auto trace =
      workload::synth_packet_trace(kDistinctFiles, 24 * 1024, rules, 0.2, 3);
  for (const auto& p : trace) w.files.push_back(p.payload);
  for (std::size_t b = 0; b < kDistinctFiles; ++b) {
    std::vector<std::string> docs;
    for (int d = 0; d < 6; ++d) {
      docs.push_back(workload::synth_web_page(1500, b * 100 + static_cast<std::uint64_t>(d)));
    }
    w.batches.push_back(std::move(docs));
  }
  w.stream = workload::zipf_request_stream(kDistinctFiles, kRequestsPerApp, 1.1, 7);
  return w;
}

}  // namespace

int main() {
  std::puts("=== Macro workflow: 3 applications, 1 store (paper Fig. 1) ===");
  std::printf("(%zu distinct inputs per app, %zu Zipf requests per app)\n\n",
              kDistinctFiles, kRequestsPerApp);

  const auto rules = workload::synth_ruleset(400, 11, 0.1, 0.03);
  const match::RuleSet ruleset(rules);
  const Workload w = make_workload(rules);

  const auto run = [&](bool with_speed) -> double {
    sgx::Platform platform(bench::realistic_model());
    store::ResultStore store(platform);

    struct AppBundle {
      std::unique_ptr<sgx::Enclave> enclave;
      store::AppConnection conn;
      std::unique_ptr<runtime::DedupRuntime> rt;
    };
    auto make_app = [&](const char* name) {
      AppBundle a;
      a.enclave = platform.create_enclave(name);
      a.conn = store::connect_app(store, *a.enclave);
      a.rt = std::make_unique<runtime::DedupRuntime>(
          *a.enclave, std::move(a.conn.session_key), std::move(a.conn.transport));
      a.rt->libraries().register_library("macro-lib", "1.0", as_bytes("code"));
      return a;
    };
    AppBundle scanner = make_app("virus-scanner");
    AppBundle gateway = make_app("compression-gateway");
    AppBundle analytics = make_app("bow-analytics");

    runtime::Deduplicable<std::vector<std::uint32_t>(const Bytes&)> scan(
        *scanner.rt, {"macro-lib", "1.0", "scan"},
        [&](const Bytes& file) { return ruleset.scan_sequential(file); });
    runtime::Deduplicable<Bytes(const Bytes&)> compress(
        *gateway.rt, {"macro-lib", "1.0", "deflate"},
        [](const Bytes& file) { return deflate::compress(file); });
    runtime::Deduplicable<mapreduce::WordHistogram(const std::vector<std::string>&)>
        bow(*analytics.rt, {"macro-lib", "1.0", "bow"},
            [](const std::vector<std::string>& docs) {
              return mapreduce::bag_of_words(docs);
            });

    Stopwatch sw;
    for (const std::size_t idx : w.stream) {
      if (with_speed) {
        scan(w.files[idx]);
        compress(w.files[idx]);
        bow(w.batches[idx]);
      } else {
        scanner.enclave->ecall([&] {
          auto r = ruleset.scan_sequential(w.files[idx]);
          __asm__ volatile("" : : "m"(r) : "memory");
        });
        gateway.enclave->ecall([&] {
          auto r = deflate::compress(w.files[idx]);
          __asm__ volatile("" : : "m"(r) : "memory");
        });
        analytics.enclave->ecall([&] {
          auto r = mapreduce::bag_of_words(w.batches[idx]);
          __asm__ volatile("" : : "m"(r) : "memory");
        });
      }
    }
    scanner.rt->flush();
    gateway.rt->flush();
    analytics.rt->flush();
    const double total = sw.elapsed_ms();

    if (with_speed) {
      const auto s = store.stats();
      std::printf("  store: %llu entries, %llu hits / %llu gets, "
                  "%.1f MB ciphertext\n",
                  static_cast<unsigned long long>(s.entries),
                  static_cast<unsigned long long>(s.hits),
                  static_cast<unsigned long long>(s.get_requests),
                  static_cast<double>(s.ciphertext_bytes) / (1 << 20));
    }
    return total;
  };

  std::puts("running WITHOUT SPEED (every request recomputed in-enclave)...");
  const double baseline_ms = run(false);
  std::puts("running WITH SPEED...");
  const double speed_ms = run(true);

  TablePrinter table({"Configuration", "Total (ms)", "Relative"});
  table.add_row({"without SPEED", TablePrinter::fmt(baseline_ms, 0), "100.0%"});
  table.add_row({"with SPEED", TablePrinter::fmt(speed_ms, 0),
                 bench::pct(speed_ms, baseline_ms)});
  table.print();
  std::printf("\nworkload speedup: %.1fx — the Fig. 1 story at system level:\n",
              baseline_ms / speed_ms);
  std::puts("Zipf-repeated inputs turn into store hits across all three");
  std::puts("applications sharing one encrypted ResultStore.");
  return 0;
}
