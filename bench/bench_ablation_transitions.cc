// Ablation A3: sensitivity of store-operation latency to the enclave
// transition cost — the knob that system-level fixes (HotCalls, Eleos,
// switchless calls; paper refs [9], [10], [51], [52]) attack.
//
// Sweeps the one-way ECALL/OCALL cost and measures small-payload GETs, the
// operation Fig. 6 shows is transition-dominated. Expected: latency tracks
// the transition cost nearly linearly at 1 KB, demonstrating why the paper
// points to exit-less mechanisms as the complementary optimization.
#include <cstdio>

#include "bench_common.h"
#include "crypto/drbg.h"

namespace {

using namespace speed;

constexpr std::uint64_t kTransitionNs[] = {0, 1000, 2000, 4000, 8000, 16000};
constexpr std::size_t kPayload = 1024;
constexpr int kOps = 200;

double run_gets(std::uint64_t transition_ns) {
  sgx::CostModel model;
  model.enabled = transition_ns > 0;
  model.ecall_ns = transition_ns;
  model.ocall_ns = transition_ns;
  sgx::Platform platform(model);
  store::ResultStore store(platform);
  crypto::Drbg drbg(to_bytes("a3"));

  serialize::PutRequest put;
  put.tag.fill(0x42);
  put.requester.fill(0x01);
  put.entry.challenge = drbg.bytes(32);
  put.entry.wrapped_key = drbg.bytes(16);
  put.entry.result_ct = drbg.bytes(kPayload);
  store.handle(serialize::encode_message(put));

  serialize::GetRequest get;
  get.tag.fill(0x42);
  get.requester.fill(0x01);
  const Bytes wire = serialize::encode_message(get);

  Stopwatch sw;
  for (int i = 0; i < kOps; ++i) store.handle(wire);
  return sw.elapsed_ms() * 1000.0 / kOps;  // us per GET
}

}  // namespace

int main() {
  std::puts("=== Ablation A3: enclave transition-cost sweep (1KB GETs) ===\n");

  TablePrinter table({"One-way transition (us)", "GET latency (us)",
                      "vs zero-cost"});
  const double base = run_gets(0);
  for (const std::uint64_t ns : kTransitionNs) {
    const double us = run_gets(ns);
    table.add_row({TablePrinter::fmt(static_cast<double>(ns) / 1000.0, 1),
                   TablePrinter::fmt(us, 1),
                   TablePrinter::fmt(us / base, 1) + "x"});
  }
  table.print();

  std::puts("\nExpected: small-payload GET latency grows ~linearly with the");
  std::puts("transition cost (2 transitions per ECALL round trip), matching");
  std::puts("the Fig. 6 analysis; exit-less call mechanisms would flatten it.");
  return 0;
}
