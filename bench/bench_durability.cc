// Durability overhead: the file-backed ResultStore vs the in-memory arena.
//
// Part 1 (throughput matrix): closed-loop PUT and GET throughput on the
// Fig. 6 concurrency matrix — (1 thread, 1 shard) and (8 threads, 8
// shards) — for three backends: the in-memory arena, the file backend with
// fsync on every WAL append (strict durability), and the file backend with
// fsync batching (fsync_every = 64). PUTs write distinct tags (each paying
// blob append + sealed WAL append); GETs replay a Zipf-skewed stream over
// the stored universe (each paying a pread from the blob segment). The
// acceptance bar for this harness: file-backed GET throughput within 2x of
// the in-memory arena at 8 threads / 8 shards.
//
// Part 2 (cold-start recovery): each file-backed store is closed and
// reopened; the reopen replays the sealed WAL, verifies the MAC chain and
// rebuilds the trusted dictionaries. Reported as total recovery time and
// per-entry replay cost.
//
// Output: human-readable tables on stdout, machine-readable JSON to the
// path given as argv[1] (default: BENCH_durability.json in the working
// dir).
#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "crypto/drbg.h"
#include "store/file_backend.h"
#include "workload/synthetic.h"

namespace {

using namespace speed;

constexpr std::size_t kPutsPerThread = 500;
constexpr std::size_t kGetsPerThread = 2000;
constexpr std::size_t kPayloadBytes = 512;
constexpr double kZipfSkew = 0.99;

serialize::Tag nth_tag(std::uint64_t n) {
  serialize::Tag t{};
  for (int i = 0; i < 8; ++i) {
    t[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(n >> (8 * i));
  }
  return t;
}

/// Zero switch/paging costs: the measured variable is the persistence
/// backend's real I/O, not the simulated enclave transitions.
sgx::CostModel io_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  m.epc_page_swap_ns = 0;
  return m;
}

struct BackendSpec {
  std::string name;
  bool durable;
  std::size_t fsync_every;  ///< ignored for the in-memory arena
};

struct Point {
  std::string backend;
  int threads;
  std::size_t shards;
  double put_ops_per_sec;
  double get_ops_per_sec;
  bench::LatencySummary get_latency;
  // Cold-start recovery (durable backends only; zero otherwise).
  std::uint64_t recovered_entries = 0;
  std::uint64_t recovery_ms = 0;
};

std::string bench_dir(const BackendSpec& spec, int threads,
                      std::size_t shards) {
  return (std::filesystem::temp_directory_path() /
          ("speed-bench-dur-" + spec.name + "-" + std::to_string(threads) +
           "t" + std::to_string(shards) + "s"))
      .string();
}

std::unique_ptr<store::ResultStore> make_store(sgx::Platform& platform,
                                               const BackendSpec& spec,
                                               const std::string& dir,
                                               std::size_t shards) {
  store::StoreConfig cfg;
  cfg.shards = shards;
  if (!spec.durable) {
    return std::make_unique<store::ResultStore>(platform, cfg);
  }
  store::FileBackendConfig fcfg;
  fcfg.fsync_every = spec.fsync_every;
  return store::open_result_store(platform, dir, cfg, fcfg);
}

Point run_point(const BackendSpec& spec, int threads, std::size_t shards) {
  const std::string dir = bench_dir(spec, threads, shards);
  std::filesystem::remove_all(dir);
  if (spec.durable) std::filesystem::create_directories(dir);

  sgx::Platform platform(io_model(), as_bytes(dir));
  auto store = make_store(platform, spec, dir, shards);

  // Pre-generate all requests so generation stays out of the timed regions.
  const std::size_t universe =
      static_cast<std::size_t>(threads) * kPutsPerThread;
  crypto::Drbg drbg(to_bytes("durability-bench"));
  std::vector<serialize::PutRequest> puts;
  puts.reserve(universe);
  for (std::uint64_t n = 0; n < universe; ++n) {
    serialize::PutRequest put;
    put.tag = nth_tag(n);
    put.requester.fill(0x01);
    put.entry.challenge = drbg.bytes(32);
    put.entry.wrapped_key = drbg.bytes(16);
    put.entry.result_ct = drbg.bytes(kPayloadBytes);
    puts.push_back(std::move(put));
  }
  std::vector<std::vector<std::size_t>> streams;
  for (int t = 0; t < threads; ++t) {
    streams.push_back(workload::zipf_request_stream(
        universe, kGetsPerThread, kZipfSkew,
        /*seed=*/42 + static_cast<std::uint64_t>(t)));
  }

  Point p{};
  p.backend = spec.name;
  p.threads = threads;
  p.shards = shards;

  // ---- PUT phase: distinct tags, disjoint per-thread ranges.
  {
    std::vector<std::thread> workers;
    Stopwatch sw;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const std::size_t begin =
            static_cast<std::size_t>(t) * kPutsPerThread;
        for (std::size_t i = begin; i < begin + kPutsPerThread; ++i) {
          store->put(puts[i]);
        }
      });
    }
    for (auto& w : workers) w.join();
    store->flush_backend();
    const double wall_ms = sw.elapsed_ms();
    p.put_ops_per_sec = 1000.0 * static_cast<double>(universe) / wall_ms;
  }

  // ---- GET phase: Zipf stream over the stored universe.
  std::vector<bench::LatencyRecorder> recorders(
      static_cast<std::size_t>(threads));
  {
    std::vector<std::thread> workers;
    Stopwatch sw;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        auto& rec = recorders[static_cast<std::size_t>(t)];
        for (const std::size_t idx : streams[static_cast<std::size_t>(t)]) {
          serialize::GetRequest get;
          get.tag = nth_tag(idx);
          get.requester.fill(0x01);
          rec.time([&] { store->get(get); });
        }
      });
    }
    for (auto& w : workers) w.join();
    const double wall_ms = sw.elapsed_ms();
    p.get_ops_per_sec = 1000.0 *
                        static_cast<double>(static_cast<std::size_t>(threads) *
                                            kGetsPerThread) /
                        wall_ms;
  }
  p.get_latency = bench::summarize(recorders);

  // ---- Cold-start recovery: reopen and replay the sealed WAL.
  if (spec.durable) {
    store.reset();
    sgx::Platform platform2(io_model(), as_bytes(dir));
    auto reopened = make_store(platform2, spec, dir, shards);
    p.recovered_entries = reopened->recovery_info().inserts;
    p.recovery_ms = reopened->recovery_info().recovery_ms;
  }
  std::filesystem::remove_all(dir);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_durability.json";

  const std::vector<BackendSpec> specs = {
      {"memory", false, 0},
      {"file-fsync1", true, 1},
      {"file-fsync64", true, 64},
  };
  const std::vector<std::pair<int, std::size_t>> matrix = {{1, 1}, {8, 8}};

  std::printf(
      "=== Durability overhead: file backend vs in-memory arena ===\n"
      "(%zu-byte payloads; PUT = blob append + sealed WAL append; GET = "
      "segment pread; Zipf skew %.2f)\n\n",
      kPayloadBytes, kZipfSkew);

  TablePrinter table({"Backend", "Threads", "Shards", "PUT ops/s",
                      "GET ops/s", "GET p99 (us)", "Recovered", "Recovery ms"});
  std::vector<Point> points;
  for (const auto& [threads, shards] : matrix) {
    for (const auto& spec : specs) {
      Point p = run_point(spec, threads, shards);
      table.add_row({p.backend, std::to_string(p.threads),
                     std::to_string(p.shards),
                     TablePrinter::fmt(p.put_ops_per_sec, 0),
                     TablePrinter::fmt(p.get_ops_per_sec, 0),
                     TablePrinter::fmt(p.get_latency.p99_us, 1),
                     std::to_string(p.recovered_entries),
                     std::to_string(p.recovery_ms)});
      points.push_back(std::move(p));
    }
  }
  table.print();

  // GET overhead at the largest cell — the acceptance bar for the durable
  // backend is within 2x of the in-memory arena here.
  const auto find = [&](const std::string& name) -> const Point* {
    for (const auto& p : points) {
      if (p.backend == name && p.threads == 8) return &p;
    }
    return nullptr;
  };
  const Point* mem = find("memory");
  const Point* strict = find("file-fsync1");
  if (mem != nullptr && strict != nullptr && strict->get_ops_per_sec > 0) {
    std::printf("\nGET overhead at 8t/8s: in-memory is %.2fx the strict "
                "file backend\n",
                mem->get_ops_per_sec / strict->get_ops_per_sec);
  }

  std::string json = "{\"points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    char buf[384];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"backend\": \"%s\", \"threads\": %d, \"shards\": %zu, "
        "\"put_ops_per_sec\": %.1f, \"get_ops_per_sec\": %.1f, "
        "\"recovered_entries\": %llu, \"recovery_ms\": %llu, "
        "\"get_latency\": ",
        i ? ", " : "", p.backend.c_str(), p.threads, p.shards,
        p.put_ops_per_sec, p.get_ops_per_sec,
        static_cast<unsigned long long>(p.recovered_entries),
        static_cast<unsigned long long>(p.recovery_ms));
    json += buf;
    json += p.get_latency.json();
    json += "}";
  }
  json += "]}";

  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nJSON written to %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  }
  return 0;
}
