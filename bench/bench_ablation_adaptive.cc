// Ablation A4: the adaptive deduplication strategy (paper §VII future work).
//
// Three policies on two workloads:
//   always-dedup  — plain Deduplicable (the paper's design),
//   never-dedup   — direct calls,
//   adaptive      — AdaptiveDeduplicable (bypasses when dedup doesn't pay).
//
// Workload F (favourable): slow function, Zipf-repeated inputs — dedup wins.
// Workload P (pathological): cheap function, all-unique inputs — dedup is
// pure overhead, the case §V-B warns about. The adaptive policy should track
// the better baseline in both.
#include <cstdio>

#include "bench_common.h"
#include "runtime/adaptive.h"
#include "workload/synthetic.h"

namespace {

using namespace speed;

constexpr int kCalls = 300;

Bytes slow_fn(const Bytes& in) {
  busy_wait_ns(2'000'000);  // 2 ms of simulated work
  return in;
}

Bytes cheap_fn(const Bytes& in) {
  Bytes out = in;
  for (auto& b : out) b ^= 0x5a;
  return out;
}

struct WorkloadResult {
  double total_ms;
};

enum class Policy { kAlways, kNever, kAdaptive };

WorkloadResult run(bool favourable, Policy policy) {
  bench::Testbed bed("adaptive-ablation", bench::realistic_model());
  bed.rt.libraries().register_library("lib", "1", as_bytes("code"));
  const serialize::FunctionDescriptor desc{
      "lib", "1", favourable ? "slow" : "cheap"};
  auto fn = favourable ? slow_fn : cheap_fn;

  // Inputs: Zipf-repeated for the favourable workload, unique otherwise.
  Xoshiro256 rng(favourable ? 11 : 13);
  std::vector<Bytes> inputs;
  if (favourable) {
    const auto stream = workload::zipf_request_stream(20, kCalls, 1.1, 17);
    std::vector<Bytes> distinct;
    for (int i = 0; i < 20; ++i) distinct.push_back(rng.bytes(2048));
    for (const auto idx : stream) inputs.push_back(distinct[idx]);
  } else {
    for (int i = 0; i < kCalls; ++i) inputs.push_back(rng.bytes(2048));
  }

  runtime::Deduplicable<Bytes(const Bytes&)> always(bed.rt, desc, fn);
  runtime::AdaptiveDeduplicable<Bytes(const Bytes&)> adaptive(bed.rt, desc, fn);

  Stopwatch sw;
  for (const Bytes& input : inputs) {
    switch (policy) {
      case Policy::kAlways: always(input); break;
      case Policy::kNever: fn(input); break;
      case Policy::kAdaptive: adaptive(input); break;
    }
  }
  bed.rt.flush();
  return {sw.elapsed_ms()};
}

}  // namespace

int main() {
  std::puts("=== Ablation A4: adaptive dedup strategy (paper SS VII) ===");
  std::printf("(%d calls per cell; favourable = 2ms fn, Zipf inputs; "
              "pathological = cheap fn, unique inputs)\n\n", kCalls);

  TablePrinter table({"Workload", "always-dedup (ms)", "never-dedup (ms)",
                      "adaptive (ms)"});
  for (const bool favourable : {true, false}) {
    const auto always = run(favourable, Policy::kAlways);
    const auto never = run(favourable, Policy::kNever);
    const auto adaptive = run(favourable, Policy::kAdaptive);
    table.add_row({favourable ? "favourable" : "pathological",
                   TablePrinter::fmt(always.total_ms, 1),
                   TablePrinter::fmt(never.total_ms, 1),
                   TablePrinter::fmt(adaptive.total_ms, 1)});
  }
  table.print();

  std::puts("\nExpected: adaptive ~= always-dedup on the favourable workload");
  std::puts("and ~= never-dedup on the pathological one — the automatic");
  std::puts("strategy adjustment the paper names as future work.");
  return 0;
}
