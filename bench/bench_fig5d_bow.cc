// Fig. 5(d) regeneration: bag-of-words on MapReduce under SPEED.
//
// Expected shape (paper): BoW is cheap per byte and its result (the word
// histogram) is comparatively large, so the speedup ceiling is low
// (paper: 3.7-4x) and Init.Comp. shows the largest overhead of the four
// case studies (up to 34%).
#include <cstdio>

#include "apps/mapreduce/bow.h"
#include "bench_common.h"
#include "workload/synthetic.h"

namespace {

using namespace speed;

constexpr std::size_t kPageCounts[] = {50, 100, 200, 400};
constexpr std::size_t kPageBytes = 2048;
constexpr int kTrials = 3;

}  // namespace

int main() {
  std::puts("=== Fig. 5(d): BoW computation via mini-MapReduce ===");
  std::printf("(web pages of ~%zu bytes; histogram over the whole batch)\n\n",
              kPageBytes);

  bench::Testbed bed("bow-bench-app");
  bed.rt.libraries().register_library(mapreduce::kLibraryFamily,
                                      mapreduce::kLibraryVersion,
                                      as_bytes("mapreduce-code-v1"));
  runtime::Deduplicable<mapreduce::WordHistogram(const std::vector<std::string>&)>
      dedup_bow(bed.rt,
                {mapreduce::kLibraryFamily, mapreduce::kLibraryVersion,
                 "histogram bow_mapper(docs)"},
                [](const std::vector<std::string>& docs) {
                  return mapreduce::bag_of_words(docs);
                });

  TablePrinter table({"Pages", "Baseline (ms)", "Init.Comp. (ms)", "Init. %",
                      "Subsq.Comp. (ms)", "Subsq. %", "Speedup"});

  std::uint64_t seed = 400;
  for (const std::size_t pages : kPageCounts) {
    const auto make_batch = [&](std::uint64_t s) {
      std::vector<std::string> docs;
      docs.reserve(pages);
      for (std::size_t i = 0; i < pages; ++i) {
        docs.push_back(workload::synth_web_page(kPageBytes, s * 10000 + i));
      }
      return docs;
    };

    const auto baseline_batch = make_batch(seed++);
    const double baseline_ms = bench::time_ms(kTrials, [&] {
      bed.enclave->ecall([&] {
        const auto hist = mapreduce::bag_of_words(baseline_batch);
        __asm__ volatile("" : : "m"(hist) : "memory");
      });
    });

    double init_total = 0;
    for (int t = 0; t < kTrials; ++t) {
      const auto batch = make_batch(seed++);
      Stopwatch sw;
      dedup_bow(batch);
      bed.rt.flush();
      init_total += sw.elapsed_ms();
    }
    const double init_ms = init_total / kTrials;

    const auto hot = make_batch(seed++);
    dedup_bow(hot);
    bed.rt.flush();
    const double subsq_ms = bench::time_ms(kTrials * 3, [&] { dedup_bow(hot); });

    table.add_row({std::to_string(pages),
                   TablePrinter::fmt(baseline_ms, 2),
                   TablePrinter::fmt(init_ms, 2),
                   bench::pct(init_ms, baseline_ms),
                   TablePrinter::fmt(subsq_ms, 3),
                   bench::pct(subsq_ms, baseline_ms),
                   TablePrinter::fmt(baseline_ms / subsq_ms, 1) + "x"});
  }
  table.print();
  std::puts("\nShape check vs paper Fig. 5(d): the lowest speedups of the four");
  std::puts("case studies (paper: 3.7-4x) and the highest Init.Comp. overhead");
  std::puts("(paper: up to 34%) — cheap computation, relatively large result.");
  return 0;
}
