// Ablation A2: synchronous vs asynchronous PUT on the initial-computation
// path (the paper's §V-B note: "the remaining PUT operations ... can be
// processed in a separated thread for better efficiency").
//
// The effect matters exactly when shipping the protected result is
// comparable to computing it, so we measure two workloads:
//   * tokenize: cheap per byte, result ≈ input size (PUT-dominated) — the
//     async win shows here;
//   * deflate: compute-dominated — async makes little difference, matching
//     the paper's observation that slow functions hide the PUT anyway.
//
// A second section measures what the fault-tolerance layer costs when
// nothing is failing: the same hit-path workload over a bare transport vs
// one wrapped in ResilientTransport (target: <2% overhead), plus the
// degraded mode (store dead, breaker open) against pure local compute.
#include <cstdio>
#include <memory>

#include "apps/deflate/deflate.h"
#include "apps/mapreduce/bow.h"
#include "bench_common.h"
#include "workload/synthetic.h"

namespace {

using namespace speed;

constexpr std::size_t kInputBytes = 512 * 1024;
constexpr int kTrials = 8;

double run_mode(bool async_put, bool heavy_compute, std::uint64_t seed_base) {
  runtime::RuntimeConfig config;
  config.async_put = async_put;
  bench::Testbed bed("async-ablation-app", bench::realistic_model(), config);
  bed.rt.libraries().register_library("ablation-lib", "1.0",
                                      as_bytes("ablation-code"));

  runtime::Deduplicable<Bytes(const Bytes&)> dedup_deflate(
      bed.rt, {"ablation-lib", "1.0", "bytes deflate(bytes)"},
      [](const Bytes& in) { return deflate::compress(in); });
  runtime::Deduplicable<std::vector<std::string>(const std::string&)>
      dedup_tokenize(bed.rt, {"ablation-lib", "1.0", "vector<str> tokenize(str)"},
                     [](const std::string& text) {
                       return mapreduce::tokenize(text, 2);
                     });

  double total = 0;
  for (int t = 0; t < kTrials; ++t) {
    const std::string text =
        workload::synth_text(kInputBytes, seed_base + static_cast<std::uint64_t>(t));
    Stopwatch sw;
    if (heavy_compute) {
      dedup_deflate(to_bytes(text));  // caller-visible latency only
    } else {
      dedup_tokenize(text);
    }
    total += sw.elapsed_ms();
  }
  bed.rt.flush();
  return total / kTrials;
}

enum class Layer { kBare, kResilient, kStoreDead };

/// Mean hit-path (Subsq.Comp.) latency with the chosen transport stack.
/// kStoreDead reports the degraded path instead: every call is served by
/// local compute behind an open breaker.
double run_resilience(Layer layer, std::uint64_t seed) {
  sgx::Platform platform(bench::realistic_model());
  store::ResultStore store(platform);
  auto enclave = platform.create_enclave("resilience-ablation-app");
  auto conn = store::connect_app(store, *enclave);
  auto session = std::move(conn.session);  // keep the server side alive

  std::unique_ptr<net::Transport> transport = std::move(conn.transport);
  if (layer != Layer::kBare) {
    if (layer == Layer::kStoreDead) {
      transport = std::make_unique<net::FaultInjectingTransport>(
          std::move(transport),
          net::FaultInjectingTransport::always(
              net::FaultInjectingTransport::Fault::kDisconnect));
    }
    transport = std::make_unique<net::ResilientTransport>(
        std::move(transport), net::ResilientTransport::ReconnectFn{});
  }
  runtime::DedupRuntime rt(*enclave, std::move(conn.session_key), std::move(transport));
  rt.libraries().register_library("ablation-lib", "1.0", as_bytes("ablation-code"));
  runtime::Deduplicable<std::vector<std::string>(const std::string&)> dedup(
      rt, {"ablation-lib", "1.0", "vector<str> tokenize(str)"},
      [](const std::string& text) { return mapreduce::tokenize(text, 2); });

  const std::string text = workload::synth_text(kInputBytes, seed);
  dedup(text);  // warm: miss (or first degrade) + PUT
  rt.flush();
  return bench::time_ms(kTrials, [&] { dedup(text); });
}

}  // namespace

int main() {
  std::puts("=== Ablation A2: sync vs async PUT on the miss path ===");
  std::printf("(%zu KB fresh inputs; caller-visible Init.Comp. latency)\n\n",
              kInputBytes / 1024);

  TablePrinter table({"Workload", "PUT mode", "Init.Comp. (ms)", "vs sync"});
  const double tok_sync = run_mode(false, false, 5000);
  const double tok_async = run_mode(true, false, 5000);
  table.add_row({"tokenize (PUT-bound)", "synchronous",
                 TablePrinter::fmt(tok_sync, 2), "100.0%"});
  table.add_row({"tokenize (PUT-bound)", "asynchronous",
                 TablePrinter::fmt(tok_async, 2), bench::pct(tok_async, tok_sync)});
  const double def_sync = run_mode(false, true, 7000);
  const double def_async = run_mode(true, true, 7000);
  table.add_row({"deflate (compute-bound)", "synchronous",
                 TablePrinter::fmt(def_sync, 2), "100.0%"});
  table.add_row({"deflate (compute-bound)", "asynchronous",
                 TablePrinter::fmt(def_async, 2), bench::pct(def_async, def_sync)});
  table.print();

  std::puts("\nExpected: async PUT hides the store round trip and result");
  std::puts("shipping when they rival the computation (tokenize), and is");
  std::puts("neutral for compute-dominated functions (deflate).");

  std::puts("\n=== Resilience layer: happy-path overhead & degraded mode ===");
  std::puts("(tokenize hit path; ResilientTransport adds one lock + breaker");
  std::puts("check per round trip — target <2% over the bare transport)\n");

  TablePrinter res_table({"Transport stack", "Subsq.Comp. (ms)", "vs bare"});
  const double bare = run_resilience(Layer::kBare, 9000);
  const double wrapped = run_resilience(Layer::kResilient, 9000);
  const double dead = run_resilience(Layer::kStoreDead, 9000);
  res_table.add_row({"bare TcpTransport-equivalent", TablePrinter::fmt(bare, 3),
                     "100.0%"});
  res_table.add_row({"+ ResilientTransport", TablePrinter::fmt(wrapped, 3),
                     bench::pct(wrapped, bare)});
  res_table.add_row({"store dead (degrade-to-compute)",
                     TablePrinter::fmt(dead, 3), bench::pct(dead, bare)});
  res_table.print();

  std::puts("\nExpected: wrapping costs ~0 on hits; with the store dead every");
  std::puts("call pays local compute instead of a hit — the fail-open price.");
  return 0;
}
