// Ablation A2: synchronous vs asynchronous PUT on the initial-computation
// path (the paper's §V-B note: "the remaining PUT operations ... can be
// processed in a separated thread for better efficiency").
//
// The effect matters exactly when shipping the protected result is
// comparable to computing it, so we measure two workloads:
//   * tokenize: cheap per byte, result ≈ input size (PUT-dominated) — the
//     async win shows here;
//   * deflate: compute-dominated — async makes little difference, matching
//     the paper's observation that slow functions hide the PUT anyway.
#include <cstdio>

#include "apps/deflate/deflate.h"
#include "apps/mapreduce/bow.h"
#include "bench_common.h"
#include "workload/synthetic.h"

namespace {

using namespace speed;

constexpr std::size_t kInputBytes = 512 * 1024;
constexpr int kTrials = 8;

double run_mode(bool async_put, bool heavy_compute, std::uint64_t seed_base) {
  runtime::RuntimeConfig config;
  config.async_put = async_put;
  bench::Testbed bed("async-ablation-app", bench::realistic_model(), config);
  bed.rt.libraries().register_library("ablation-lib", "1.0",
                                      as_bytes("ablation-code"));

  runtime::Deduplicable<Bytes(const Bytes&)> dedup_deflate(
      bed.rt, {"ablation-lib", "1.0", "bytes deflate(bytes)"},
      [](const Bytes& in) { return deflate::compress(in); });
  runtime::Deduplicable<std::vector<std::string>(const std::string&)>
      dedup_tokenize(bed.rt, {"ablation-lib", "1.0", "vector<str> tokenize(str)"},
                     [](const std::string& text) {
                       return mapreduce::tokenize(text, 2);
                     });

  double total = 0;
  for (int t = 0; t < kTrials; ++t) {
    const std::string text =
        workload::synth_text(kInputBytes, seed_base + static_cast<std::uint64_t>(t));
    Stopwatch sw;
    if (heavy_compute) {
      dedup_deflate(to_bytes(text));  // caller-visible latency only
    } else {
      dedup_tokenize(text);
    }
    total += sw.elapsed_ms();
  }
  bed.rt.flush();
  return total / kTrials;
}

}  // namespace

int main() {
  std::puts("=== Ablation A2: sync vs async PUT on the miss path ===");
  std::printf("(%zu KB fresh inputs; caller-visible Init.Comp. latency)\n\n",
              kInputBytes / 1024);

  TablePrinter table({"Workload", "PUT mode", "Init.Comp. (ms)", "vs sync"});
  const double tok_sync = run_mode(false, false, 5000);
  const double tok_async = run_mode(true, false, 5000);
  table.add_row({"tokenize (PUT-bound)", "synchronous",
                 TablePrinter::fmt(tok_sync, 2), "100.0%"});
  table.add_row({"tokenize (PUT-bound)", "asynchronous",
                 TablePrinter::fmt(tok_async, 2), bench::pct(tok_async, tok_sync)});
  const double def_sync = run_mode(false, true, 7000);
  const double def_async = run_mode(true, true, 7000);
  table.add_row({"deflate (compute-bound)", "synchronous",
                 TablePrinter::fmt(def_sync, 2), "100.0%"});
  table.add_row({"deflate (compute-bound)", "asynchronous",
                 TablePrinter::fmt(def_async, 2), bench::pct(def_async, def_sync)});
  table.print();

  std::puts("\nExpected: async PUT hides the store round trip and result");
  std::puts("shipping when they rival the computation (tokenize), and is");
  std::puts("neutral for compute-dominated functions (deflate).");
  return 0;
}
