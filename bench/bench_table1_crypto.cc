// Table I regeneration: latency of the DedupRuntime cryptographic
// operations — Tag Gen., Key Gen. (pick + wrap k), Key Rec., Result Enc.,
// Result Dec. — for 1 KB / 10 KB / 100 KB / 1 MB inputs.
//
// Expected shape (paper Table I): every operation scales linearly with the
// input size, and result encryption/decryption are roughly an order of
// magnitude faster than the three hash-bound operations at 100 KB+ (the
// hash walks func+input; AES-GCM runs on AES-NI).
#include <cstdio>

#include "bench_common.h"
#include "crypto/drbg.h"
#include "mle/rce.h"

namespace {

using namespace speed;

constexpr std::size_t kSizes[] = {1024, 10 * 1024, 100 * 1024, 1024 * 1024};
constexpr int kTrials = 30;

mle::FunctionIdentity make_fn() {
  mle::FunctionIdentity fn;
  fn.descriptor = {"bench-lib", "1.0", "bytes f(bytes)"};
  fn.code_measurement =
      sgx::measure_library("bench-lib", "1.0", as_bytes("bench-code"));
  return fn;
}

}  // namespace

int main() {
  std::puts("=== Table I: cryptographic operations in DedupRuntime ===");
  std::puts("(mean of 30 trials; result size == input size)\n");

  crypto::Drbg drbg(to_bytes("table1-bench"));
  const mle::FunctionIdentity fn = make_fn();

  TablePrinter table({"Input (KB)", "Tag Gen. (ms)", "Key Gen. (ms)",
                      "Key Rec. (ms)", "Result Enc. (ms)", "Result Dec. (ms)"});

  for (const std::size_t size : kSizes) {
    const Bytes input = drbg.bytes(size);
    const Bytes result = drbg.bytes(size);

    const double tag_ms = bench::time_ms(kTrials, [&] {
      const auto t = mle::derive_tag(fn, input);
      __asm__ volatile("" : : "m"(t) : "memory");
    });

    const auto wrapped = mle::ResultCipher::generate_key(fn, input, drbg);
    const double keygen_ms = bench::time_ms(kTrials, [&] {
      auto wk = mle::ResultCipher::generate_key(fn, input, drbg);
      (void)wk;
    });
    const double keyrec_ms = bench::time_ms(kTrials, [&] {
      auto k = mle::ResultCipher::recover_key(
          fn, input,
          wrapped.challenge.reveal_for(secret::Purpose::of("bench_timing")),
          wrapped.wrapped_key);
      (void)k;
    });

    const mle::Tag tag = mle::derive_tag(fn, input);
    const Bytes ct =
        mle::ResultCipher::encrypt_result(tag, wrapped.key, result, drbg);
    const double enc_ms = bench::time_ms(kTrials, [&] {
      auto c = mle::ResultCipher::encrypt_result(tag, wrapped.key, result, drbg);
      (void)c;
    });
    const double dec_ms = bench::time_ms(kTrials, [&] {
      auto p = mle::ResultCipher::decrypt_result(tag, wrapped.key, ct);
      (void)p;
    });

    table.add_row({std::to_string(size / 1024), TablePrinter::fmt(tag_ms),
                   TablePrinter::fmt(keygen_ms), TablePrinter::fmt(keyrec_ms),
                   TablePrinter::fmt(enc_ms), TablePrinter::fmt(dec_ms)});
  }
  table.print();

  std::puts("\nShape check vs paper Table I:");
  std::puts(" - all five columns grow roughly linearly with input size");
  std::puts(" - Enc/Dec are several times faster than the hash-bound Tag Gen /");
  std::puts("   Key Gen / Key Rec columns (paper: 1.73/0.26 ms vs ~3-6 ms at 1MB)");
  return 0;
}
