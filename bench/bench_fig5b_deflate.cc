// Fig. 5(b) regeneration: data compression (DEFLATE) under SPEED.
//
// Expected shape (paper): compression is fast relative to the crypto, so
// the ceiling is low — the paper reports only 3.8-4x speedups, with a
// visible Init.Comp. overhead. The crossover logic of §V-B ("SPEED is more
// suitable for time-consuming computations") shows up here.
#include <cstdio>

#include "apps/deflate/deflate.h"
#include "bench_common.h"
#include "workload/synthetic.h"

namespace {

using namespace speed;

constexpr std::size_t kSizes[] = {64 * 1024, 256 * 1024, 1024 * 1024,
                                  4 * 1024 * 1024};
constexpr int kTrials = 3;

}  // namespace

int main() {
  std::puts("=== Fig. 5(b): data compression via DEFLATE ===");
  std::puts("(relative running time; baseline = ported deflate without SPEED)\n");

  bench::Testbed bed("deflate-bench-app");
  bed.rt.libraries().register_library(deflate::kLibraryFamily,
                                      deflate::kLibraryVersion,
                                      as_bytes("deflate-code-v1"));
  runtime::Deduplicable<Bytes(const Bytes&)> dedup_deflate(
      bed.rt,
      {deflate::kLibraryFamily, deflate::kLibraryVersion, "bytes deflate(bytes)"},
      [](const Bytes& in) { return deflate::compress(in); });

  TablePrinter table({"Input (KB)", "Baseline (ms)", "Init.Comp. (ms)",
                      "Init. %", "Subsq.Comp. (ms)", "Subsq. %", "Speedup"});

  std::uint64_t seed = 200;
  for (const std::size_t size : kSizes) {
    const Bytes baseline_in = to_bytes(workload::synth_text(size, seed++));
    const double baseline_ms = bench::time_ms(kTrials, [&] {
      bed.enclave->ecall([&] {
        const Bytes c = deflate::compress(baseline_in);
        __asm__ volatile("" : : "m"(c) : "memory");
      });
    });

    double init_total = 0;
    for (int t = 0; t < kTrials; ++t) {
      const Bytes in = to_bytes(workload::synth_text(size, seed++));
      Stopwatch sw;
      dedup_deflate(in);
      bed.rt.flush();
      init_total += sw.elapsed_ms();
    }
    const double init_ms = init_total / kTrials;

    const Bytes hot = to_bytes(workload::synth_text(size, seed++));
    dedup_deflate(hot);
    bed.rt.flush();
    const double subsq_ms =
        bench::time_ms(kTrials * 3, [&] { dedup_deflate(hot); });

    table.add_row({std::to_string(size / 1024),
                   TablePrinter::fmt(baseline_ms, 2),
                   TablePrinter::fmt(init_ms, 2),
                   bench::pct(init_ms, baseline_ms),
                   TablePrinter::fmt(subsq_ms, 3),
                   bench::pct(subsq_ms, baseline_ms),
                   TablePrinter::fmt(baseline_ms / subsq_ms, 1) + "x"});
  }
  table.print();
  std::puts("\nShape check vs paper Fig. 5(b): modest speedups (paper: 3.8-4x)");
  std::puts("and noticeable Init.Comp. overhead — compression is on the same");
  std::puts("cost scale as the crypto it pays for.");
  return 0;
}
