// Replicated cluster overhead and availability (docs/PROTOCOL.md §8).
//
// Part 1 (scale matrix): closed-loop PUT and GET throughput through the
// ClusterTransport walk for N = 1, 3, 5 store nodes (r = min(1, N-1)
// replicas). Every PUT pays one attested round trip per ring owner (full
// quorum before the ack); every GET normally pays one (found on the
// primary). The interesting number is the replication tax: N=1/r=0 is the
// single-store baseline the other rows are compared against.
//
// Part 2 (kill-one availability trace): N = 3, r = 1. A fixed GET workload
// over preloaded entries runs in windows; partway through, one node is
// killed mid-traffic, and later restarted + rejoined. Each window reports
// the fraction of GETs that found their (acked) entry — the acceptance bar
// is >99% availability across the whole trace, including the windows where
// a node is down, plus zero acked-entry misses after the heal.
//
// Enclave transition costs are zeroed so the measured variable is the
// cluster routing + crypto itself, not the simulated SGX switch tax.
//
// Output: human-readable tables on stdout, machine-readable JSON to the
// path given as argv[1] (default: BENCH_cluster.json in the working dir).
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "store/inproc_cluster.h"

namespace {

using namespace speed;

constexpr std::size_t kPuts = 400;
constexpr std::size_t kGets = 2000;
constexpr std::size_t kPayloadBytes = 256;

serialize::Tag nth_tag(std::uint64_t n) {
  // Fill the whole tag (splitmix64 per 8-byte lane): rendezvous placement
  // reads tag bytes beyond the first word, so a counter packed into one
  // lane would put every entry on the same ring owners.
  serialize::Tag t{};
  for (std::size_t lane = 0; lane < t.size() / 8; ++lane) {
    std::uint64_t x = n + 0x9E3779B97F4A7C15ull * (lane + 1);
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    x ^= x >> 31;
    for (std::size_t i = 0; i < 8; ++i) {
      t[lane * 8 + i] = static_cast<std::uint8_t>(x >> (8 * i));
    }
  }
  return t;
}

/// Zero switch/paging costs: the measured variable is the cluster walk.
sgx::CostModel routing_model() {
  sgx::CostModel m;
  m.ecall_ns = 0;
  m.ocall_ns = 0;
  m.epc_page_swap_ns = 0;
  return m;
}

struct Bed {
  explicit Bed(std::size_t nodes, std::size_t replicas)
      : platform(routing_model()) {
    store::InprocClusterConfig cc;
    cc.nodes = nodes;
    cc.cluster.replicas = replicas;
    cluster.emplace(platform, cc);
    app = platform.create_enclave("bench-cluster-app");
    transport = cluster->connect(*app);
  }

  serialize::PutRequest put_request(std::uint64_t n) {
    serialize::PutRequest put;
    put.tag = nth_tag(n);
    put.requester = app->measurement();
    put.entry.challenge = Bytes(32, 0x21);
    put.entry.wrapped_key = Bytes(16, 0x42);
    put.entry.result_ct = Bytes(kPayloadBytes, 0x99);
    return put;
  }

  bool get_found(std::uint64_t n) {
    serialize::GetRequest get;
    get.tag = nth_tag(n);
    get.requester = app->measurement();
    const serialize::Message m =
        app->ecall([&] { return transport->round_trip_message(get); });
    const auto* resp = std::get_if<serialize::GetResponse>(&m);
    return resp != nullptr && resp->found;
  }

  sgx::Platform platform;
  std::optional<store::InprocCluster> cluster;
  std::unique_ptr<sgx::Enclave> app;
  std::shared_ptr<net::ClusterTransport> transport;
};

struct ScalePoint {
  std::size_t nodes;
  std::size_t replicas;
  double put_ops_per_sec;
  double get_ops_per_sec;
  bench::LatencySummary get_latency;
};

ScalePoint run_scale(std::size_t nodes, std::size_t replicas) {
  Bed bed(nodes, replicas);
  ScalePoint p{};
  p.nodes = nodes;
  p.replicas = replicas;

  {
    Stopwatch sw;
    for (std::uint64_t n = 0; n < kPuts; ++n) {
      const serialize::Message m = bed.app->ecall(
          [&] { return bed.transport->round_trip_message(bed.put_request(n)); });
      (void)m;
    }
    p.put_ops_per_sec = 1000.0 * kPuts / sw.elapsed_ms();
  }

  bench::LatencyRecorder rec;
  Xoshiro256 rng(0xBE7C7ull);
  {
    Stopwatch sw;
    for (std::size_t i = 0; i < kGets; ++i) {
      const std::uint64_t n = rng.below(kPuts);
      rec.time([&] { bed.get_found(n); });
    }
    p.get_ops_per_sec = 1000.0 * kGets / sw.elapsed_ms();
  }
  p.get_latency = bench::summarize(rec.snapshot());
  return p;
}

struct Window {
  std::string phase;
  std::size_t ok = 0;
  std::size_t ops = 0;
};

struct Trace {
  std::vector<Window> windows;
  std::uint64_t failovers = 0;
  std::uint64_t read_repairs = 0;
  double availability = 0;  ///< found / attempted over the whole trace
};

Trace run_availability_trace() {
  constexpr std::size_t kWindowOps = 250;
  constexpr std::size_t kKillWindow = 4;
  constexpr std::size_t kRestartWindow = 8;
  constexpr std::size_t kWindows = 12;

  Bed bed(3, 1);
  for (std::uint64_t n = 0; n < kPuts; ++n) {
    bed.app->ecall(
        [&] { return bed.transport->round_trip_message(bed.put_request(n)); });
  }

  Trace trace;
  Xoshiro256 rng(0xA7A11ull);
  std::size_t found_total = 0;
  for (std::size_t w = 0; w < kWindows; ++w) {
    if (w == kKillWindow) bed.cluster->kill(1);
    if (w == kRestartWindow) {
      if (bed.cluster->restart(1)) bed.cluster->rejoin(1);
      bed.cluster->anti_entropy_round();
    }
    Window win;
    win.phase = w < kKillWindow      ? "healthy"
                : w < kRestartWindow ? "node-1-down"
                                     : "healed";
    win.ops = kWindowOps;
    for (std::size_t i = 0; i < kWindowOps; ++i) {
      if (bed.get_found(rng.below(kPuts))) ++win.ok;
    }
    found_total += win.ok;
    trace.windows.push_back(std::move(win));
  }
  trace.failovers = bed.transport->stats().failovers;
  trace.read_repairs = bed.transport->stats().read_repairs;
  trace.availability =
      static_cast<double>(found_total) / (kWindows * kWindowOps);
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_cluster.json";

  std::printf(
      "=== Replicated cluster: routing overhead and availability ===\n"
      "(%zu-byte payloads; PUT acked only at full r+1 quorum; N=1/r=0 is "
      "the single-store baseline)\n\n",
      kPayloadBytes);

  const std::vector<std::pair<std::size_t, std::size_t>> matrix = {
      {1, 0}, {3, 1}, {5, 1}};
  std::vector<ScalePoint> points;
  TablePrinter table(
      {"Nodes", "Replicas", "PUT ops/s", "GET ops/s", "GET p99 (us)"});
  for (const auto& [nodes, replicas] : matrix) {
    ScalePoint p = run_scale(nodes, replicas);
    table.add_row({std::to_string(p.nodes), std::to_string(p.replicas),
                   TablePrinter::fmt(p.put_ops_per_sec, 0),
                   TablePrinter::fmt(p.get_ops_per_sec, 0),
                   TablePrinter::fmt(p.get_latency.p99_us, 1)});
    points.push_back(std::move(p));
  }
  table.print();

  std::printf("\n--- Kill-one-node availability trace (N=3, r=1) ---\n");
  const Trace trace = run_availability_trace();
  TablePrinter trace_table({"Window", "Phase", "Found", "Ops"});
  for (std::size_t w = 0; w < trace.windows.size(); ++w) {
    const Window& win = trace.windows[w];
    trace_table.add_row({std::to_string(w), win.phase, std::to_string(win.ok),
                         std::to_string(win.ops)});
  }
  trace_table.print();
  std::printf(
      "\navailability: %.4f (acceptance bar: > 0.99)\n"
      "failovers: %llu   read repairs: %llu\n",
      trace.availability, static_cast<unsigned long long>(trace.failovers),
      static_cast<unsigned long long>(trace.read_repairs));

  std::string json = "{\"scale\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"nodes\": %zu, \"replicas\": %zu, "
                  "\"put_ops_per_sec\": %.1f, \"get_ops_per_sec\": %.1f, "
                  "\"get_latency\": ",
                  i ? ", " : "", p.nodes, p.replicas, p.put_ops_per_sec,
                  p.get_ops_per_sec);
    json += buf;
    json += p.get_latency.json();
    json += "}";
  }
  json += "], \"availability_trace\": {\"windows\": [";
  for (std::size_t w = 0; w < trace.windows.size(); ++w) {
    const Window& win = trace.windows[w];
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"phase\": \"%s\", \"ok\": %zu, \"ops\": %zu}",
                  w ? ", " : "", win.phase.c_str(), win.ok, win.ops);
    json += buf;
  }
  char tail[192];
  std::snprintf(tail, sizeof(tail),
                "], \"availability\": %.4f, \"failovers\": %llu, "
                "\"read_repairs\": %llu}}",
                trace.availability,
                static_cast<unsigned long long>(trace.failovers),
                static_cast<unsigned long long>(trace.read_repairs));
  json += tail;

  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nJSON written to %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  }
  return 0;
}
